package store

import (
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"tiptop/internal/core"
	"tiptop/internal/hpm"
)

// sampleAt builds one engine refresh with `tasks` synthetic tasks at
// time now. Per task: instr = 1000·pid, cycles = 500·pid (IPC 2),
// misses = pid, one value column holding the pid.
func sampleAt(now time.Duration, tasks int) *core.Sample {
	s := &core.Sample{Time: now}
	for i := 0; i < tasks; i++ {
		pid := 100 + i
		s.Rows = append(s.Rows, core.Row{
			Info: core.TaskInfo{
				ID:   hpm.TaskID{PID: pid, TID: pid},
				User: "u", Comm: "job", State: "R",
			},
			CPUPct: 50,
			Values: []float64{float64(pid)},
			Events: map[string]uint64{
				hpm.EventInstructions: uint64(1000 * pid),
				hpm.EventCycles:       uint64(500 * pid),
				hpm.EventCacheMisses:  uint64(pid),
			},
			Valid: true,
		})
	}
	return s
}

// fill appends n refreshes at the given cadence starting at start.
func fill(t *testing.T, st *Store, start, interval time.Duration, n, tasks int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := st.AppendSample(sampleAt(start+time.Duration(i)*interval, tasks)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func mustOpen(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	st, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return st
}

func TestAppendQueryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{})
	st.SetColumns([]string{"ipc"})
	fill(t, st, 2*time.Second, 2*time.Second, 15, 3) // t = 2..30s

	res, err := st.Query(QueryOptions{PID: 101, FromSeconds: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.ResolutionSeconds != 0 {
		t.Fatalf("raw query served from resolution %g", res.ResolutionSeconds)
	}
	if len(res.Series) != 1 {
		t.Fatalf("pid filter returned %d series", len(res.Series))
	}
	s := res.Series[0]
	if s.PID != 101 || s.User != "u" || s.Command != "job" {
		t.Fatalf("series identity = %+v", s)
	}
	if len(s.Points) != 15 {
		t.Fatalf("got %d points, want 15", len(s.Points))
	}
	p := s.Points[0]
	if p.TimeSeconds != 2 || p.IPC != 2 || p.CPUPct != 50 || len(p.Values) != 1 || p.Values[0] != 101 {
		t.Fatalf("first point = %+v", p)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "ipc" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if len(res.Machine) != 15 {
		t.Fatalf("machine roll-up has %d points, want 15", len(res.Machine))
	}

	// Sub-range: [10, 20] inclusive has the points at 10..20.
	res, err = st.Query(QueryOptions{PID: -1, FromSeconds: 10, ToSeconds: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("all-task query returned %d series", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 6 {
			t.Fatalf("pid %d: %d points in [10,20], want 6", s.PID, len(s.Points))
		}
		if s.Points[0].TimeSeconds != 10 || s.Points[5].TimeSeconds != 20 {
			t.Fatalf("range endpoints wrong: %v .. %v", s.Points[0], s.Points[5])
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDownsampleTiers(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{})
	st.SetColumns([]string{"v"})
	// 2-second cadence to t=134: the 10s tier sees buckets (0,10] ..
	// (120,130] complete, the 1m tier sees (0,60] and (60,120] (a
	// bucket flushes when finer-tier data beyond its end arrives).
	fill(t, st, 2*time.Second, 2*time.Second, 67, 2) // t = 2..134s

	res, err := st.Query(QueryOptions{PID: 100, StepSeconds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.ResolutionSeconds != 10 {
		t.Fatalf("step 10 served from resolution %g", res.ResolutionSeconds)
	}
	pts := res.Series[0].Points
	if len(pts) != 13 {
		t.Fatalf("10s tier has %d points, want 13", len(pts))
	}
	// Bucket (0,10] held refreshes at 2..10; stamped with end time 10,
	// averages preserved, IPC recomputed from summed counters.
	if pts[0].TimeSeconds != 10 || pts[0].CPUPct != 50 || pts[0].IPC != 2 || pts[0].Values[0] != 100 {
		t.Fatalf("first 10s bucket = %+v", pts[0])
	}

	res, err = st.Query(QueryOptions{PID: 100, StepSeconds: 60})
	if err != nil {
		t.Fatal(err)
	}
	if res.ResolutionSeconds != 60 {
		t.Fatalf("step 60 served from resolution %g", res.ResolutionSeconds)
	}
	pts = res.Series[0].Points
	if len(pts) != 2 {
		t.Fatalf("1m tier has %d points, want 2", len(pts))
	}
	if pts[0].TimeSeconds != 60 || pts[1].TimeSeconds != 120 {
		t.Fatalf("1m bucket times = %g, %g", pts[0].TimeSeconds, pts[1].TimeSeconds)
	}
	if pts[0].IPC != 2 || pts[0].Values[0] != 100 {
		t.Fatalf("1m bucket = %+v", pts[0])
	}

	// A step between tiers re-buckets the finer tier's points.
	res, err = st.Query(QueryOptions{PID: 100, StepSeconds: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.ResolutionSeconds != 10 || res.StepSeconds != 30 {
		t.Fatalf("step 30: resolution %g step %g", res.ResolutionSeconds, res.StepSeconds)
	}
	pts = res.Series[0].Points
	if len(pts) != 5 { // 10s points at 10..130 → (0,30] (30,60] ... (120,150]
		t.Fatalf("step-30 re-bucketing has %d points, want 5", len(pts))
	}
	if pts[0].TimeSeconds != 30 || pts[0].IPC != 2 {
		t.Fatalf("step-30 first bucket = %+v", pts[0])
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryTruncatedTail is the crash-safety acceptance test:
// a record torn mid-write must be clipped on open and everything before
// it must survive and stay queryable.
func TestCrashRecoveryTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{NoDownsample: true})
	st.SetColumns([]string{"v"})
	fill(t, st, time.Second, time.Second, 20, 2)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail record: chop 3 bytes off the newest raw segment.
	seg := newestSegment(t, dir, "raw")
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	st = mustOpen(t, dir, Options{NoDownsample: true})
	if got := st.Records(); got != 19 {
		t.Fatalf("recovered %d records, want 19 after clipping the torn tail", got)
	}
	res, err := st.Query(QueryOptions{PID: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series[0].Points) != 19 {
		t.Fatalf("query sees %d points, want 19", len(res.Series[0].Points))
	}
	last := res.Series[0].Points[18]
	if last.TimeSeconds != 19 {
		t.Fatalf("last surviving point at t=%g, want 19", last.TimeSeconds)
	}

	// The clip must be physical: appending must produce a parseable
	// chain, and reopening again must see old + new records.
	fill(t, st, time.Second, time.Second, 5, 2) // store clock continues past 19
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st = mustOpen(t, dir, Options{NoDownsample: true})
	if got := st.Records(); got != 24 {
		t.Fatalf("after restart-append-restart: %d records, want 24", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryGarbageTail(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{NoDownsample: true})
	fill(t, st, time.Second, time.Second, 10, 1)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	seg := newestSegment(t, dir, "raw")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("\xde\xad\xbe\xef garbage that is no frame")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st = mustOpen(t, dir, Options{NoDownsample: true})
	if got := st.Records(); got != 10 {
		t.Fatalf("recovered %d records, want 10 with garbage clipped", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMonotonicAcrossRestart: a monitor's clock restarts at zero after
// every boot, but stored time must keep rising so range queries span
// restarts.
func TestMonotonicAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{})
	fill(t, st, time.Second, time.Second, 10, 1) // store clock 1..10
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st = mustOpen(t, dir, Options{})
	fill(t, st, time.Second, time.Second, 10, 1) // sample clock restarts; store clock 11..20
	res, err := st.Query(QueryOptions{PID: 100})
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Series[0].Points
	if len(pts) != 20 {
		t.Fatalf("%d points spanning the restart, want 20", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].TimeSeconds <= pts[i-1].TimeSeconds {
			t.Fatalf("time went backwards across the restart: %g after %g",
				pts[i].TimeSeconds, pts[i-1].TimeSeconds)
		}
	}
	if pts[19].TimeSeconds != 20 {
		t.Fatalf("last point at t=%g, want 20", pts[19].TimeSeconds)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRetentionBudget is the long-run bound: the store must stay under
// its byte budget while appends keep coming, shedding oldest data.
func TestRetentionBudget(t *testing.T) {
	dir := t.TempDir()
	budget := int64(64 << 10)
	st := mustOpen(t, dir, Options{Budget: budget})
	st.SetColumns([]string{"v"})
	for i := 0; i < 2000; i++ {
		if err := st.AppendSample(sampleAt(time.Duration(i)*time.Second, 4)); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			if use := st.DiskUsage(); use > budget {
				t.Fatalf("after %d appends the store uses %d bytes, budget %d", i+1, use, budget)
			}
		}
	}
	if use := st.DiskUsage(); use > budget {
		t.Fatalf("final usage %d bytes over budget %d", use, budget)
	}
	// The newest data must still be queryable; the oldest raw data must
	// be gone (the budget cannot hold 2000 refreshes).
	res, err := st.Query(QueryOptions{PID: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 || len(res.Series[0].Points) == 0 {
		t.Fatal("no queryable data survived retention")
	}
	pts := res.Series[0].Points
	if pts[0].TimeSeconds == 1 {
		t.Fatal("oldest raw refresh survived a budget 30x too small")
	}
	if got := pts[len(pts)-1].TimeSeconds; got != 1999 {
		t.Fatalf("newest point at t=%g, want 1999", got)
	}
	// The 1m tier must reach further back than the raw tier: that is
	// what tiered downsampling buys under a byte budget.
	coarse, err := st.Query(QueryOptions{PID: 100, StepSeconds: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(coarse.Series) != 1 || len(coarse.Series[0].Points) == 0 {
		t.Fatal("1m tier empty")
	}
	if coarse.Series[0].Points[0].TimeSeconds >= pts[0].TimeSeconds {
		t.Fatalf("1m tier starts at %g, not before the raw tier's %g",
			coarse.Series[0].Points[0].TimeSeconds, pts[0].TimeSeconds)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRetentionAge(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{Retention: 100 * time.Second, SegmentAge: 20 * time.Second})
	fill(t, st, time.Second, time.Second, 400, 1)
	res, err := st.Query(QueryOptions{PID: 100})
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Series[0].Points
	if pts[0].TimeSeconds < 400-100-25 {
		t.Fatalf("oldest surviving point at t=%g, want within ~the 100s horizon (+1 segment)", pts[0].TimeSeconds)
	}
	if pts[len(pts)-1].TimeSeconds != 400 {
		t.Fatalf("newest point at t=%g, want 400", pts[len(pts)-1].TimeSeconds)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestColumnsSelfDescribingAfterReopen(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{})
	st.SetColumns([]string{"ipc", "dmis"})
	fill(t, st, time.Second, time.Second, 5, 1)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen without SetColumns: the segment's first record carries them.
	st = mustOpen(t, dir, Options{})
	res, err := st.Query(QueryOptions{PID: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 || res.Columns[0] != "ipc" || res.Columns[1] != "dmis" {
		t.Fatalf("columns after reopen = %v", res.Columns)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentAppendsAndQueries exercises the lock discipline under
// -race: one appender, several range-query readers on all tiers.
func TestConcurrentAppendsAndQueries(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{SegmentBytes: 8 << 10})
	st.SetColumns([]string{"v"})
	const appends = 600
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func(step float64) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := st.Query(QueryOptions{PID: -1, StepSeconds: step}); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}(float64(q%3) * 10)
	}
	fill(t, st, time.Second, time.Second, appends, 3)
	close(stop)
	wg.Wait()
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	res, err := st.Query(QueryOptions{PID: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Series[0].Points); got == 0 {
		t.Fatal("no points after concurrent run")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAppendSteadyStateAllocs pins the hot path: once segments and
// accumulator entries exist, appending one refresh must stay within a
// few allocations (the CI bench gates the same bound end to end).
func TestAppendSteadyStateAllocs(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{NoDownsample: true})
	st.SetColumns([]string{"v"})
	s := sampleAt(0, 50)
	now := time.Duration(0)
	// Warm up: grow the encoder buffer and open the segment.
	for i := 0; i < 4; i++ {
		now += time.Second
		s.Time = now
		if err := st.AppendSample(s); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		now += time.Second
		s.Time = now
		if err := st.AppendSample(s); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 3 {
		t.Fatalf("steady-state append costs %.1f allocs/op, want <= 3", avg)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecordVersionRejected(t *testing.T) {
	if _, err := DecodeRecord([]byte(`{"v":99,"time_s":1,"rows":[],"machine":{}}`)); err == nil {
		t.Fatal("future record version accepted")
	}
}

// newestSegment returns the highest-sequence segment file of a tier.
func newestSegment(t *testing.T, dir, tier string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, tier+"-*.seg"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no %s segments in %s (%v)", tier, dir, err)
	}
	return matches[len(matches)-1]
}

// TestDownsampleBoundaryAlignment is the regression test for the
// bucket-convention bug: a tier record stamped exactly on a coarser
// bucket's boundary must fold into the bucket ending there. With a
// linear CPU% ramp, the 1m point stamped t=120 must average exactly
// the raw samples in (60, 120].
func TestDownsampleBoundaryAlignment(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{})
	for i := 1; i <= 200; i++ {
		s := sampleAt(time.Duration(i)*time.Second, 1)
		s.Rows[0].CPUPct = float64(i)
		if err := st.AppendSample(s); err != nil {
			t.Fatal(err)
		}
	}
	res, err := st.Query(QueryOptions{PID: 100, StepSeconds: 60})
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Series[0].Points
	want := map[float64]float64{60: 30.5, 120: 90.5, 180: 150.5} // mean of (k-60, k]
	for _, p := range pts {
		w, ok := want[p.TimeSeconds]
		if !ok {
			t.Fatalf("unexpected 1m point at t=%g", p.TimeSeconds)
		}
		if diff := p.CPUPct - w; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("1m point at t=%g averages %.3f, want %.3f (raw (%.0f,%.0f])",
				p.TimeSeconds, p.CPUPct, w, p.TimeSeconds-60, p.TimeSeconds)
		}
	}
	// The same range re-bucketed from the 10s tier must agree with the
	// 1m tier (both use the (start, end] convention).
	res10, err := st.Query(QueryOptions{PID: 100, StepSeconds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if p := res10.Series[0].Points[0]; p.TimeSeconds != 10 || p.CPUPct != 5.5 {
		t.Fatalf("first 10s bucket = %+v, want t=10 avg of raw (0,10] = 5.5", p)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAppendErrorPoisonsStore: once an append fails (here: the store
// directory vanishes mid-run, so the next segment rotation cannot
// create a file), every subsequent append must fail with the same
// latched error instead of writing frames after a possibly-torn tail.
func TestAppendErrorPoisonsStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	st := mustOpen(t, dir, Options{SegmentBytes: 512, NoDownsample: true})
	if err := st.AppendSample(sampleAt(time.Second, 2)); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	var appendErr error
	for i := 2; i < 64; i++ {
		if appendErr = st.AppendSample(sampleAt(time.Duration(i)*time.Second, 2)); appendErr != nil {
			break
		}
	}
	if appendErr == nil {
		t.Fatal("appends kept succeeding with the store directory gone")
	}
	if got := st.Err(); got == nil {
		t.Fatal("append error was not latched")
	}
	records := st.Records()
	if err := st.AppendSample(sampleAt(time.Hour, 2)); err == nil {
		t.Fatal("poisoned store accepted another append")
	}
	if got := st.Records(); got != records {
		t.Fatalf("poisoned store still grew: %d -> %d records", records, got)
	}
	_ = st.Close()
}

// TestOpenLocksDirectory: a second Open of a live store must fail —
// two writers interleaving frames in one segment chain corrupt it.
func TestOpenLocksDirectory(t *testing.T) {
	if runtime.GOOS != "linux" && runtime.GOOS != "darwin" {
		t.Skip("flock-based directory lock is linux/darwin only")
	}
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{})
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open of a live store succeeded")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st = mustOpen(t, dir, Options{}) // lock released on Close
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestColumnsChangeRespectsQueryRange: a query must be labelled with
// the columns in force where its range starts, even when the change
// record lies before the range inside the same segment.
func TestColumnsChangeRespectsQueryRange(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{})
	st.SetColumns([]string{"a", "b"})
	fill(t, st, time.Second, time.Second, 5, 1) // t = 1..5 labelled a,b
	st.SetColumns([]string{"c", "d"})
	fill(t, st, 6*time.Second, time.Second, 5, 1) // t = 6..10 labelled c,d

	res, err := st.Query(QueryOptions{PID: 100, FromSeconds: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 || res.Columns[0] != "c" {
		t.Fatalf("range after the screen change labelled %v, want [c d]", res.Columns)
	}
	res, err = st.Query(QueryOptions{PID: 100, ToSeconds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 || res.Columns[0] != "a" {
		t.Fatalf("range before the screen change labelled %v, want [a b]", res.Columns)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
