// Package store is tiptop's durable history: an append-only, segmented
// on-disk time-series store underneath the in-memory recording
// subsystem (internal/history), so a long-running daemon can answer
// questions about last week, not just the last few hundred samples, and
// survive restarts with its past intact.
//
// Layout and format. A store is a directory of segment files, one chain
// per resolution tier. Every record is one refresh (per-task rows plus
// the machine-wide roll-up) framed as
//
//	uint32 payload length | uint32 CRC-32 (IEEE) of payload | payload
//
// with lengths little-endian and the payload a versioned JSON document
// in the same style as the remote wire format (a leading "v" field;
// readers accept versions up to their own RecordVersion and reject
// newer ones loudly). The write path hand-encodes the payload into a
// reused buffer, so steady-state appends are near-zero-alloc like
// history.Recorder.Observe — a store teed into a recorder does not
// perturb the sampling loop.
//
// Crash safety. Appends go straight to the file; no in-process write
// buffering means a crash loses at most the record being written. Open
// scans every segment, verifies each frame's length and checksum, and
// physically clips a torn or corrupt tail off the newest segment of
// each tier (earlier segments are clipped logically), so recovery never
// needs an index or a journal.
//
// Tiers and retention. Raw refreshes land in the raw tier and are
// folded into 10-second averages, which fold into 1-minute averages
// (Resolutions). Segments rotate by size and record-time age; retention
// drops the oldest sealed segments when the configured byte budget or
// age horizon is exceeded, rawest tier first — a week of wide-fleet
// data degrades to 1-minute resolution instead of disappearing.
//
// Time. Sample clocks restart at zero whenever a monitor restarts. The
// store keeps history monotonic across restarts by remembering the last
// recorded time and offsetting every subsequent sample past it, so a
// range query spans daemon restarts seamlessly.
package store

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tiptop/internal/core"
	"tiptop/internal/hpm"
)

// RecordVersion is the newest record format this build reads and
// writes: 1 is the JSON layout the live append path produces, 2 the
// columnar layout compaction rewrites sealed segments into (recordv2.go).
// Readers sniff the version per frame, accept documents up to this
// ceiling and reject newer ones loudly, mirroring the remote wire
// contract.
const RecordVersion = 2

// Resolutions are the store's downsampling tiers: raw refreshes, then
// 10-second averages, then 1-minute averages. Index 0 is the raw tier.
var Resolutions = []time.Duration{0, 10 * time.Second, time.Minute}

// tierNames name the segment files of each tier ("raw-00000001.seg").
var tierNames = []string{"raw", "10s", "1m"}

// budgetShare is each tier's slice of Options.Budget, raw first. The
// raw tier gets half: it is the densest and the first to be dropped.
var budgetShare = []float64{0.5, 0.25, 0.25}

// Options tune a Store. The zero value gives 1 MiB segments sealed at
// ten minutes of record time, a 64 MiB byte budget and no age horizon.
type Options struct {
	// SegmentBytes seals the active segment of a tier once it grows
	// past this size (default 1 MiB, clamped to Budget/8 so retention
	// can always find sealed segments to drop).
	SegmentBytes int64
	// SegmentAge seals the active segment once the record time it spans
	// exceeds this (default 10 minutes). Age is measured on the
	// monotonic record clock, not wall time, so simulated monitors
	// rotate deterministically.
	SegmentAge time.Duration
	// Retention drops sealed segments whose newest record is older than
	// this relative to the store's latest record (0 = keep forever).
	Retention time.Duration
	// Budget bounds the store's total size on disk across all tiers
	// (default 64 MiB). When exceeded, the oldest sealed segments are
	// deleted, rawest tier first.
	Budget int64
	// NoDownsample disables the 10s/1m tiers (raw records only); used
	// by benchmarks isolating the append path.
	NoDownsample bool
	// Fsync bounds the window a kernel crash can lose (group-commit
	// durability). The zero policy never syncs — durability is the page
	// cache's, as before.
	Fsync FsyncPolicy
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.SegmentAge <= 0 {
		o.SegmentAge = 10 * time.Minute
	}
	if o.Budget <= 0 {
		o.Budget = 64 << 20
	}
	if max := o.Budget / 8; o.SegmentBytes > max {
		o.SegmentBytes = max
	}
	if o.SegmentBytes < 512 {
		o.SegmentBytes = 512
	}
	return o
}

// Store is an open on-disk history store. One goroutine may append
// (Observe) while any number query concurrently.
type Store struct {
	dir  string
	opt  Options
	lock *os.File // advisory directory lock, nil where unsupported

	mu      sync.Mutex
	tiers   []*tier
	cols    []string
	lastErr error
	// base offsets observed sample times so record time keeps rising
	// across monitor restarts (sample clocks restart at zero).
	base     time.Duration
	lastTime time.Duration
	records  int64 // appended + recovered, all tiers
	enc      encoder
	// group-commit fsync bookkeeping (zero policy: never touched).
	unsynced int64
	lastSync time.Time
	// compacting serializes Compact calls and defers retention while a
	// rewrite is in flight (compact.go).
	compacting bool
}

// tier is one resolution's segment chain plus the accumulator folding
// the finer tier's records into it.
type tier struct {
	idx    int
	res    time.Duration
	sealed []*segment
	active *segment
	acc    *accumulator // nil for the raw tier
	// colsWritten tracks whether the active segment already carries the
	// column names (each segment is self-describing).
	colsWritten bool
	// dirty marks the active segment as having unsynced appends (only
	// maintained when a fsync policy is set).
	dirty bool
}

// Open creates or recovers the store in dir. A torn tail record —
// the signature of a crash mid-append — is detected by frame length
// and checksum and clipped from the newest segment of each tier. The
// directory is flock'd (on linux/darwin) for the store's lifetime: a
// second process opening a live store fails instead of corrupting the
// segment chain with interleaved appends.
func Open(dir string, opt Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	st := &Store{dir: dir, opt: opt.withDefaults(), lock: lock}
	for i, res := range Resolutions {
		t := &tier{idx: i, res: res}
		if i > 0 {
			t.acc = newAccumulator(res)
		}
		st.tiers = append(st.tiers, t)
	}
	if err := st.recover(); err != nil {
		if lock != nil {
			lock.Close()
		}
		return nil, err
	}
	return st, nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

// Err returns the first append error latched by Observe (Observe
// implements core.Observer and cannot return one), nil when healthy.
func (st *Store) Err() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lastErr
}

// Records counts the records in the store across all tiers, recovered
// plus appended.
func (st *Store) Records() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.records
}

// DiskUsage returns the store's current size on disk, in bytes.
func (st *Store) DiskUsage() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.usageLocked()
}

// LastTime returns the newest record time (the monotonic store clock).
func (st *Store) LastTime() time.Duration {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lastTime
}

func (st *Store) usageLocked() int64 {
	var total int64
	for _, t := range st.tiers {
		for _, sg := range t.sealed {
			total += sg.size
		}
		if t.active != nil {
			total += t.active.size
		}
	}
	return total
}

// SetColumns records the screen's column names; they are embedded in
// the first record of every segment so each segment is self-describing
// after older ones are retired. Idempotent.
func (st *Store) SetColumns(names []string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(names) == len(st.cols) {
		same := true
		for i := range names {
			if names[i] != st.cols[i] {
				same = false
				break
			}
		}
		if same {
			return
		}
	}
	st.cols = append(st.cols[:0:0], names...)
	for _, t := range st.tiers {
		t.colsWritten = false
	}
}

// Columns returns the column names currently labelling records — the
// vocabulary an expression query over the store can reference.
func (st *Store) Columns() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]string(nil), st.cols...)
}

// Observe appends one engine refresh. It implements core.Observer so a
// history.Recorder (or a core.Session directly) can tee into the store;
// errors are latched and reported by Err.
func (st *Store) Observe(s *core.Sample) {
	_ = st.AppendSample(s)
}

// AppendSample appends one engine refresh to the raw tier and folds it
// into the downsampling tiers. The sample's own clock is offset by the
// store's base so record time is monotonic across monitor restarts.
//
// The first append error poisons the store: a failed write may have
// left a partial frame at the segment tail, and appending more frames
// after it would bury them behind bytes the next recovery clips away.
// Failing every subsequent append (and Err) loudly is the contract —
// callers stop, and recovery after restart loses at most the one torn
// record.
func (st *Store) AppendSample(s *core.Sample) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.tiers == nil {
		// Appending to a closed store is a lifecycle bug worth
		// surfacing through Err, not just the return value Observe
		// discards.
		err := errors.New("store: closed")
		if st.lastErr == nil {
			st.lastErr = err
		}
		return err
	}
	if st.lastErr != nil {
		return st.lastErr
	}
	if err := st.appendLocked(s); err != nil {
		st.lastErr = err
		return err
	}
	return nil
}

func (st *Store) appendLocked(s *core.Sample) error {
	now := st.base + s.Time
	if now <= st.lastTime && st.records > 0 {
		// A sample at or before the recorded horizon (e.g. the first
		// refresh after a restart, whose monitor clock reads zero):
		// nudge strictly forward — record time never repeats or goes
		// back. One millisecond is the record clock's precision.
		now = st.lastTime + time.Millisecond
	}
	var agg rollup
	for i := range s.Rows {
		row := &s.Rows[i]
		agg.tasks++
		agg.cpuPct += row.CPUPct
		agg.instr += row.Events[hpm.EventInstructions]
		agg.cycles += row.Events[hpm.EventCycles]
		agg.misses += row.Events[hpm.EventCacheMisses]
	}
	err := st.writeRecord(st.tiers[0], now, &agg, func(e *encoder) {
		for i := range s.Rows {
			row := &s.Rows[i]
			e.row(row.Info.ID.PID, row.Info.ID.TID, row.Info.User, row.Info.Comm,
				row.CPUPct, row.IPC(), row.Values,
				row.Events[hpm.EventInstructions],
				row.Events[hpm.EventCycles],
				row.Events[hpm.EventCacheMisses])
		}
	})
	if err != nil {
		return err
	}
	if !st.opt.NoDownsample {
		if err := st.fold(1, now, func(acc *accumulator) {
			for i := range s.Rows {
				row := &s.Rows[i]
				acc.fold(row.Info.ID, row.Info.User, row.Info.Comm, row.CPUPct, row.IPC(),
					row.Values,
					row.Events[hpm.EventInstructions],
					row.Events[hpm.EventCycles],
					row.Events[hpm.EventCacheMisses])
			}
		}); err != nil {
			return err
		}
	}
	st.lastTime = now
	if err := st.maybeSyncLocked(); err != nil {
		return err
	}
	return st.enforceLocked(now)
}

// maybeSyncLocked applies the group-commit fsync policy: once enough
// records or wall-clock time have accumulated since the last sync,
// every dirty active segment is flushed to stable storage in one batch.
func (st *Store) maybeSyncLocked() error {
	p := st.opt.Fsync
	if !p.enabled() {
		return nil
	}
	st.unsynced++
	due := p.Records > 0 && st.unsynced >= p.Records
	if !due && p.Interval > 0 {
		if st.lastSync.IsZero() {
			st.lastSync = time.Now()
		} else if time.Since(st.lastSync) >= p.Interval {
			due = true
		}
	}
	if !due {
		return nil
	}
	for _, t := range st.tiers {
		if !t.dirty || t.active == nil {
			continue
		}
		if err := t.active.sync(); err != nil {
			return err
		}
		t.dirty = false
	}
	st.unsynced = 0
	st.lastSync = time.Now()
	return nil
}

// colsFor returns the column names to embed in the next record of t:
// set on the first record of each segment, empty afterwards.
func (st *Store) colsFor(t *tier) []string {
	if t.colsWritten || len(st.cols) == 0 {
		return nil
	}
	return st.cols
}

// writeRecord rotates the tier's active segment if due, encodes one
// record (header, rows via emit, the machine roll-up) into the reused
// buffer, and appends the framed result.
func (st *Store) writeRecord(t *tier, now time.Duration, agg *rollup, emit func(*encoder)) error {
	if t.active == nil || t.active.size >= st.opt.SegmentBytes ||
		(t.active.n > 0 && now-t.active.first >= st.opt.SegmentAge) {
		if err := st.rotateLocked(t); err != nil {
			return err
		}
	}
	st.enc.beginRecord(now, t.res, st.colsFor(t))
	emit(&st.enc)
	st.enc.endRecord(agg)
	if err := t.active.append(st.enc.frame()); err != nil {
		return err
	}
	if st.opt.Fsync.enabled() {
		t.dirty = true
	}
	t.colsWritten = t.colsWritten || len(st.cols) > 0
	if t.active.n == 1 {
		t.active.first = now
	}
	t.active.last = now
	st.records++
	return nil
}

// fold pushes one finer-tier record into tier ti's accumulator, flushing
// completed buckets down the chain. emit folds each task row into the
// accumulator it is handed.
func (st *Store) fold(ti int, now time.Duration, emit func(*accumulator)) error {
	if ti >= len(st.tiers) {
		return nil
	}
	t := st.tiers[ti]
	if flushed := t.acc.advance(now); flushed != nil {
		if err := st.flushBucket(t, flushed); err != nil {
			return err
		}
	}
	emit(t.acc)
	return nil
}

// flushBucket writes one completed downsample bucket as a record of
// tier t and folds it into the next coarser tier.
func (st *Store) flushBucket(t *tier, b *bucket) error {
	if len(b.rows) == 0 {
		return nil
	}
	end := b.end
	var agg rollup
	for _, r := range b.rows {
		agg.tasks++
		agg.cpuPct += r.cpuPct
		agg.instr += r.instr
		agg.cycles += r.cycles
		agg.misses += r.misses
	}
	err := st.writeRecord(t, end, &agg, func(e *encoder) {
		for _, r := range b.rows {
			e.row(r.id.PID, r.id.TID, r.user, r.comm, r.cpuPct, r.ipc, r.values,
				r.instr, r.cycles, r.misses)
		}
	})
	if err != nil {
		return err
	}
	return st.fold(t.idx+1, end, func(acc *accumulator) {
		for _, r := range b.rows {
			acc.fold(r.id, r.user, r.comm, r.cpuPct, r.ipc, r.values, r.instr, r.cycles, r.misses)
		}
	})
}

// rotateLocked seals the tier's active segment and starts the next one.
func (st *Store) rotateLocked(t *tier) error {
	if t.active != nil {
		if st.opt.Fsync.enabled() && t.dirty {
			// The durability bound must survive the rotation: flush the
			// outgoing segment before it is sealed away from the policy's
			// reach.
			if err := t.active.sync(); err != nil {
				return err
			}
			t.dirty = false
		}
		if err := t.active.seal(); err != nil {
			return err
		}
		if t.active.n > 0 {
			t.sealed = append(t.sealed, t.active)
		} else {
			_ = os.Remove(t.active.path)
		}
	}
	seq := int64(1)
	if t.active != nil {
		seq = t.active.seqEnd + 1
	} else if n := len(t.sealed); n > 0 {
		seq = t.sealed[n-1].seqEnd + 1
	}
	sg, err := createSegment(st.dir, tierNames[t.idx], seq)
	if err != nil {
		return err
	}
	t.active = sg
	t.colsWritten = false
	return nil
}

// enforceLocked applies the retention policy: first the age horizon,
// then the byte budget (oldest sealed segments, rawest tier first,
// preferring the tier most over its budget share).
func (st *Store) enforceLocked(now time.Duration) error {
	if st.compacting {
		// Retention is deferred while a compaction rewrite is reading
		// sealed segments; it resumes (and catches up) on the first
		// append after the rewrite finishes.
		return nil
	}
	if st.opt.Retention > 0 {
		horizon := now - st.opt.Retention
		for _, t := range st.tiers {
			for len(t.sealed) > 0 && t.sealed[0].last < horizon {
				if err := st.dropOldest(t); err != nil {
					return err
				}
			}
		}
	}
	for st.usageLocked() > st.opt.Budget {
		victim := st.budgetVictim()
		if victim == nil {
			// Only active segments remain; seal the largest so the next
			// pass can drop it. If nothing is big enough to seal, the
			// budget is smaller than one segment — stop rather than spin.
			var largest *tier
			for _, t := range st.tiers {
				if t.active != nil && t.active.n > 1 &&
					(largest == nil || t.active.size > largest.active.size) {
					largest = t
				}
			}
			if largest == nil {
				return nil
			}
			if err := st.rotateLocked(largest); err != nil {
				return err
			}
			continue
		}
		if err := st.dropOldest(victim); err != nil {
			return err
		}
	}
	return nil
}

// budgetVictim picks the tier to shed a segment from: the rawest tier
// that is over its budget share and has sealed segments; failing that,
// any tier with sealed segments, rawest first.
func (st *Store) budgetVictim() *tier {
	for _, t := range st.tiers {
		if len(t.sealed) == 0 {
			continue
		}
		var usage int64
		for _, sg := range t.sealed {
			usage += sg.size
		}
		if t.active != nil {
			usage += t.active.size
		}
		if float64(usage) > budgetShare[t.idx]*float64(st.opt.Budget) {
			return t
		}
	}
	for _, t := range st.tiers {
		if len(t.sealed) > 0 {
			return t
		}
	}
	return nil
}

func (st *Store) dropOldest(t *tier) error {
	sg := t.sealed[0]
	t.sealed = t.sealed[1:]
	st.records -= sg.n
	if err := os.Remove(sg.path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: retention: %w", err)
	}
	return nil
}

// Close seals the store. Partial downsample buckets are discarded (the
// raw tier holds their data); reopening resumes where the log ends.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	var first error
	for _, t := range st.tiers {
		if t.active != nil {
			if err := t.active.seal(); err != nil && first == nil {
				first = err
			}
		}
	}
	st.tiers = nil
	if st.lock != nil {
		_ = st.lock.Close()
		st.lock = nil
	}
	if first == nil {
		first = st.lastErr
	}
	return first
}

// recover scans the directory, rebuilding each tier's segment chain and
// clipping torn tails. The newest record time becomes the base offset
// for subsequent appends.
//
// Interrupted compactions resolve here: an unpublished rewrite
// (*.cmpct) is deleted — its inputs are intact — while a published one
// (*.cseg, only renamed into place after a full write and fsync)
// supersedes every segment inside the sequence range its name carries,
// finishing the unlink step the crash cut short.
func (st *Store) recover() error {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	type named struct {
		tier      int
		seq, end  int64
		compacted bool
		path      string
	}
	var files []named
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), compactingExt) {
			// Crash before publish: the originals are still authoritative.
			_ = os.Remove(filepath.Join(st.dir, e.Name()))
			continue
		}
		f := named{path: filepath.Join(st.dir, e.Name())}
		base := e.Name()
		switch {
		case strings.HasSuffix(base, compactedExt):
			f.compacted = true
			base = strings.TrimSuffix(base, compactedExt)
		case strings.HasSuffix(base, segmentExt):
			base = strings.TrimSuffix(base, segmentExt)
		default:
			continue
		}
		f.tier = -1
		for i, n := range tierNames {
			if strings.HasPrefix(base, n+"-") {
				f.tier = i
				base = base[len(n)+1:]
				break
			}
		}
		if f.tier < 0 {
			continue
		}
		if f.compacted {
			a, b, ok := strings.Cut(base, "-")
			if !ok {
				continue
			}
			start, err1 := strconv.ParseInt(a, 10, 64)
			end, err2 := strconv.ParseInt(b, 10, 64)
			if err1 != nil || err2 != nil || start <= 0 || end < start {
				continue
			}
			f.seq, f.end = start, end
		} else {
			seq, err := strconv.ParseInt(base, 10, 64)
			if err != nil || seq <= 0 {
				continue
			}
			f.seq, f.end = seq, seq
		}
		files = append(files, f)
	}
	// Chain order; on a shared start the wider (compacted) range first,
	// so the containment sweep below sees it before what it replaced.
	sort.Slice(files, func(i, j int) bool {
		a, b := files[i], files[j]
		if a.tier != b.tier {
			return a.tier < b.tier
		}
		if a.seq != b.seq {
			return a.seq < b.seq
		}
		if a.end != b.end {
			return a.end > b.end
		}
		return a.compacted && !b.compacted
	})
	// Containment sweep: a file whose range lies inside an earlier kept
	// file's range was replaced by that compaction — remove it.
	kept := files[:0]
	for _, f := range files {
		if n := len(kept); n > 0 && kept[n-1].tier == f.tier && f.end <= kept[n-1].end {
			_ = os.Remove(f.path)
			continue
		}
		kept = append(kept, f)
	}
	files = kept
	for i, f := range files {
		t := st.tiers[f.tier]
		// Only a plain tail segment reopens for appending; a compacted
		// tail stays sealed and the next append starts a fresh segment.
		lastOfTier := (i == len(files)-1 || files[i+1].tier != f.tier) && !f.compacted
		sg, err := openSegment(f.path, f.seq, f.end, lastOfTier)
		if err != nil {
			return err
		}
		if sg.n == 0 && !lastOfTier {
			_ = os.Remove(f.path)
			continue
		}
		st.records += sg.n
		if sg.last > st.lastTime {
			st.lastTime = sg.last
		}
		if lastOfTier {
			t.active = sg
			// The recovered tail already carries its columns; don't
			// rewrite them mid-segment.
			t.colsWritten = sg.n > 0
		} else {
			_ = sg.seal()
			t.sealed = append(t.sealed, sg)
		}
	}
	st.base = st.lastTime
	return nil
}

// crcTable is the IEEE table every frame checksum uses.
var crcTable = crc32.IEEETable

// ParseBytes parses a byte size with an optional binary suffix: plain
// digits, or K/M/G (also KB/MB/GB, KiB/MiB/GiB), e.g. "64MB" — the
// format of the XML budget= attribute and the -budget flag.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	mult := int64(1)
	upper := strings.ToUpper(t)
	for _, suf := range []struct {
		s string
		m int64
	}{
		{"GIB", 1 << 30}, {"GB", 1 << 30}, {"G", 1 << 30},
		{"MIB", 1 << 20}, {"MB", 1 << 20}, {"M", 1 << 20},
		{"KIB", 1 << 10}, {"KB", 1 << 10}, {"K", 1 << 10},
	} {
		if strings.HasSuffix(upper, suf.s) {
			mult = suf.m
			t = t[:len(t)-len(suf.s)]
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("store: bad byte size %q (want e.g. 1048576, 64MB, 1G)", s)
	}
	if n > (1<<62)/mult {
		return 0, fmt.Errorf("store: byte size %q overflows", s)
	}
	return n * mult, nil
}
