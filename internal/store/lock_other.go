//go:build !linux && !darwin

package store

import "os"

// lockDir is a no-op where flock(2) is unavailable (windows and the
// rarer unixes): single-writer discipline is the operator's
// responsibility there, as documented on Open.
func lockDir(dir string) (*os.File, error) { return nil, nil }
