package store

// Record payloads: the versioned JSON documents inside the frames. The
// write path hand-encodes into a reused buffer (the steady-state append
// must stay near-zero-alloc, like history.Recorder.Observe); the read
// path decodes with encoding/json, whose allocations only matter on
// queries and recovery.
//
// Field order is fixed — `{"v":1,"time_s":...}` first — so recovery can
// read a record's version and timestamp with a cheap prefix parse
// instead of a full decode (see recordPrefix).

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"strconv"
	"time"
	"unicode/utf8"
)

// Record is one decoded store record: the per-task rows of one refresh
// (or one downsample bucket) plus the machine-wide roll-up.
type Record struct {
	// V is the record version (RecordVersion when written by this code).
	V int `json:"v"`
	// TimeSeconds is the record's time on the store's monotonic clock.
	TimeSeconds float64 `json:"time_s"`
	// ResSeconds is the downsampling resolution: 0 for raw refreshes,
	// 10 for the 10-second tier, 60 for the 1-minute tier. Downsampled
	// records are stamped with their bucket's end time.
	ResSeconds float64 `json:"res,omitempty"`
	// Cols names the value columns; present in the first record of each
	// segment (and whenever the screen changes), empty otherwise.
	Cols    []string    `json:"cols,omitempty"`
	Rows    []RecordRow `json:"rows"`
	Machine RecordAgg   `json:"machine"`
}

// RecordRow is one task in a record. In downsampled records CPUPct,
// IPC and Values are bucket averages and the counters are bucket sums.
type RecordRow struct {
	PID     int       `json:"pid"`
	TID     int       `json:"tid,omitempty"`
	User    string    `json:"user"`
	Command string    `json:"command"`
	CPUPct  float64   `json:"cpu_pct"`
	IPC     float64   `json:"ipc"`
	Values  []float64 `json:"values"`
	Instr   uint64    `json:"instr"`
	Cycles  uint64    `json:"cycles"`
	Misses  uint64    `json:"misses"`
}

// RecordAgg is the roll-up over a record's rows.
type RecordAgg struct {
	Tasks  int     `json:"tasks"`
	CPUPct float64 `json:"cpu_pct"`
	Instr  uint64  `json:"instr"`
	Cycles uint64  `json:"cycles"`
	Misses uint64  `json:"misses"`
}

// rollup is the write-side accumulator for RecordAgg.
type rollup struct {
	tasks  int
	cpuPct float64
	instr  uint64
	cycles uint64
	misses uint64
}

// DecodeRecord parses and version-checks one record payload.
func DecodeRecord(payload []byte) (*Record, error) {
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, fmt.Errorf("store: bad record: %w", err)
	}
	if rec.V < 1 || rec.V > RecordVersion {
		return nil, fmt.Errorf("store: record version %d not supported (this build reads <= %d)", rec.V, RecordVersion)
	}
	return &rec, nil
}

// encoder builds framed records into one reused buffer: 8 bytes of
// frame header (filled in by frame()), then the JSON payload.
type encoder struct {
	buf      []byte
	firstRow bool
}

func (e *encoder) beginRecord(now, res time.Duration, cols []string) {
	if e.buf == nil {
		e.buf = make([]byte, frameHeader, 4096)
	}
	e.buf = e.buf[:frameHeader]
	e.buf = append(e.buf, `{"v":`...)
	e.buf = strconv.AppendInt(e.buf, recordVersionJSON, 10)
	e.buf = append(e.buf, `,"time_s":`...)
	e.buf = appendSeconds(e.buf, now)
	if res > 0 {
		e.buf = append(e.buf, `,"res":`...)
		e.buf = appendSeconds(e.buf, res)
	}
	if len(cols) > 0 {
		e.buf = append(e.buf, `,"cols":[`...)
		for i, c := range cols {
			if i > 0 {
				e.buf = append(e.buf, ',')
			}
			e.buf = appendJSONString(e.buf, c)
		}
		e.buf = append(e.buf, ']')
	}
	e.buf = append(e.buf, `,"rows":[`...)
	e.firstRow = true
}

func (e *encoder) row(pid, tid int, user, command string, cpuPct, ipc float64,
	values []float64, instr, cycles, misses uint64) {
	if !e.firstRow {
		e.buf = append(e.buf, ',')
	}
	e.firstRow = false
	e.buf = append(e.buf, `{"pid":`...)
	e.buf = strconv.AppendInt(e.buf, int64(pid), 10)
	if tid != 0 {
		e.buf = append(e.buf, `,"tid":`...)
		e.buf = strconv.AppendInt(e.buf, int64(tid), 10)
	}
	e.buf = append(e.buf, `,"user":`...)
	e.buf = appendJSONString(e.buf, user)
	e.buf = append(e.buf, `,"command":`...)
	e.buf = appendJSONString(e.buf, command)
	e.buf = append(e.buf, `,"cpu_pct":`...)
	e.buf = appendFloat(e.buf, cpuPct)
	e.buf = append(e.buf, `,"ipc":`...)
	e.buf = appendFloat(e.buf, ipc)
	e.buf = append(e.buf, `,"values":[`...)
	for i, v := range values {
		if i > 0 {
			e.buf = append(e.buf, ',')
		}
		e.buf = appendFloat(e.buf, v)
	}
	e.buf = append(e.buf, `],"instr":`...)
	e.buf = strconv.AppendUint(e.buf, instr, 10)
	e.buf = append(e.buf, `,"cycles":`...)
	e.buf = strconv.AppendUint(e.buf, cycles, 10)
	e.buf = append(e.buf, `,"misses":`...)
	e.buf = strconv.AppendUint(e.buf, misses, 10)
	e.buf = append(e.buf, '}')
}

func (e *encoder) endRecord(agg *rollup) {
	e.buf = append(e.buf, `],"machine":{"tasks":`...)
	e.buf = strconv.AppendInt(e.buf, int64(agg.tasks), 10)
	e.buf = append(e.buf, `,"cpu_pct":`...)
	e.buf = appendFloat(e.buf, agg.cpuPct)
	e.buf = append(e.buf, `,"instr":`...)
	e.buf = strconv.AppendUint(e.buf, agg.instr, 10)
	e.buf = append(e.buf, `,"cycles":`...)
	e.buf = strconv.AppendUint(e.buf, agg.cycles, 10)
	e.buf = append(e.buf, `,"misses":`...)
	e.buf = strconv.AppendUint(e.buf, agg.misses, 10)
	e.buf = append(e.buf, `}}`...)
}

// frame fills in the length/checksum header and returns the complete
// frame, valid until the next beginRecord.
func (e *encoder) frame() []byte {
	payload := e.buf[frameHeader:]
	binary.LittleEndian.PutUint32(e.buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(e.buf[4:8], crc32.Checksum(payload, crcTable))
	return e.buf
}

// appendSeconds renders a duration as decimal seconds with millisecond
// precision — compact, and cheap to re-parse during recovery.
func appendSeconds(b []byte, d time.Duration) []byte {
	ms := d.Milliseconds()
	b = strconv.AppendInt(b, ms/1000, 10)
	if frac := ms % 1000; frac != 0 {
		b = append(b, '.')
		b = append(b, byte('0'+frac/100), byte('0'+frac/10%10), byte('0'+frac%10))
	}
	return b
}

// appendFloat renders a float compactly; NaN and infinities (legal
// float64s, illegal JSON) are stored as 0.
func appendFloat(b []byte, f float64) []byte {
	if f != f || f > 1e308 || f < -1e308 {
		return append(b, '0')
	}
	return strconv.AppendFloat(b, f, 'g', -1, 64)
}

// appendJSONString writes a JSON string literal, escaping the control
// and structural characters (task commands can contain anything).
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c >= 0x20 && c < utf8.RuneSelf:
			b = append(b, c)
		case c >= utf8.RuneSelf:
			// Multi-byte UTF-8 passes through verbatim.
			b = append(b, c)
		default:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		}
	}
	return append(b, '"')
}

// parseFloat parses a decimal number from a byte slice.
func parseFloat(b []byte) (float64, error) {
	return strconv.ParseFloat(string(b), 64)
}
