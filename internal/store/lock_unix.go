//go:build linux || darwin

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an advisory exclusive lock on dir/.lock. Two processes
// appending to the same segment chain would interleave frames and
// corrupt it at the first CRC mismatch, so a second Open of a live
// store must fail loudly instead. The lock dies with the process (no
// stale-lock cleanup needed) and is released by Close.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, ".lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s is already open in another process (flock: %v)", dir, err)
	}
	return f, nil
}
