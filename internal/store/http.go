package store

// The HTTP surface of a store: the /api/v1/query handler tiptopd
// mounts (JSON by default, OpenMetrics text with ?format=openmetrics)
// and the Client that consumes it — the query side of the remote
// monitoring story, for history instead of live samples.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"tiptop/internal/remote"
)

// Handler serves range queries over the store:
//
//	GET ...?pid=N&from=S&to=S&step=S           JSON Result
//	GET ...?pid=N&from=S&to=S&step=S&format=openmetrics
//
// pid is optional (absent = every task); from/to/step are seconds on
// the store clock (to absent or 0 = open end). The step picks the
// downsample tier and, when coarser, the averaging bucket width.
func Handler(st *Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q, format, err := parseQuery(r.URL.Query())
		if err != nil {
			writeQueryError(w, http.StatusBadRequest, err)
			return
		}
		res, err := st.Query(q)
		if err != nil {
			// A bad range or step is the request's fault, not the
			// store's: 400 with the hint, never 500.
			var re *RangeError
			if errors.As(err, &re) {
				remote.WriteErrorHint(w, http.StatusBadRequest, re.Msg, re.Hint)
				return
			}
			remote.WriteError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if format == "" && remote.WantsOpenMetrics(r) {
			// Content negotiation: the ?format= parameter wins, the
			// Accept header decides otherwise.
			format = "openmetrics"
		}
		switch format {
		case "openmetrics", "om":
			// OpenMetrics 1.0, not the 0.0.4 text format: the range
			// export carries float-seconds timestamps and the # EOF
			// marker, which 0.0.4 parsers would misread (0.0.4
			// timestamps are integer milliseconds).
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			_ = WriteQueryOpenMetrics(w, res)
		default:
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(res)
		}
	})
}

// parseQuery translates URL parameters into QueryOptions.
func parseQuery(v url.Values) (QueryOptions, string, error) {
	q := QueryOptions{PID: -1}
	if s := v.Get("pid"); s != "" {
		pid, err := strconv.Atoi(s)
		if err != nil || pid < 0 {
			return q, "", fmt.Errorf("bad pid %q", s)
		}
		q.PID = pid
	}
	var err error
	if q.FromSeconds, err = floatParam(v, "from"); err != nil {
		return q, "", err
	}
	if q.ToSeconds, err = floatParam(v, "to"); err != nil {
		return q, "", err
	}
	if q.StepSeconds, err = floatParam(v, "step"); err != nil {
		return q, "", err
	}
	if q.StepSeconds < 0 {
		return q, "", &RangeError{
			Msg:  fmt.Sprintf("negative step %g", q.StepSeconds),
			Hint: "the step is a bucket width in seconds; omit it (or pass 0) for the serving tier's native resolution",
		}
	}
	if q.ToSeconds > 0 && q.ToSeconds < q.FromSeconds {
		return q, "", &RangeError{
			Msg:  fmt.Sprintf("range ends (%gs) before it starts (%gs)", q.ToSeconds, q.FromSeconds),
			Hint: "want from <= to; omit to (or pass 0) to query to the end",
		}
	}
	format := v.Get("format")
	switch format {
	case "", "json", "openmetrics", "om":
	default:
		return q, "", fmt.Errorf("unknown format %q (want json or openmetrics)", format)
	}
	return q, format, nil
}

func floatParam(v url.Values, name string) (float64, error) {
	s := v.Get(name)
	if s == "" {
		return 0, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, s)
	}
	return f, nil
}

// writeQueryError writes one request-level failure, carrying a range
// error's hint structurally in the envelope.
func writeQueryError(w http.ResponseWriter, status int, err error) {
	var re *RangeError
	if errors.As(err, &re) {
		remote.WriteErrorHint(w, status, re.Msg, re.Hint)
		return
	}
	remote.WriteError(w, status, err.Error())
}

// WriteQueryOpenMetrics renders a query result as OpenMetrics text with
// explicit timestamps: one sample per point, so a range query exports
// straight into tools that speak the exposition format. Ordering is
// deterministic (series sorted by pid/tid, points by time).
func WriteQueryOpenMetrics(w io.Writer, res *Result) error {
	bw := bufio.NewWriter(w)
	emit := func(name string, labels string, p *Point, v float64) {
		fmt.Fprintf(bw, "%s{%s} %g %g\n", name, labels, v, p.TimeSeconds)
	}
	fmt.Fprintf(bw, "# TYPE tiptop_range_machine_cpu_pct gauge\n")
	fmt.Fprintf(bw, "# TYPE tiptop_range_machine_ipc gauge\n")
	for i := range res.Machine {
		p := &res.Machine[i]
		emit("tiptop_range_machine_cpu_pct", `resolution="`+formatRes(res)+`"`, p, p.CPUPct)
		emit("tiptop_range_machine_ipc", `resolution="`+formatRes(res)+`"`, p, p.IPC)
	}
	fmt.Fprintf(bw, "# TYPE tiptop_range_cpu_pct gauge\n")
	fmt.Fprintf(bw, "# TYPE tiptop_range_ipc gauge\n")
	if len(res.Columns) > 0 {
		fmt.Fprintf(bw, "# TYPE tiptop_range_metric gauge\n")
	}
	for i := range res.Series {
		s := &res.Series[i]
		labels := fmt.Sprintf(`pid="%d",tid="%d",user=%s,command=%s`,
			s.PID, s.TID, strconv.Quote(s.User), strconv.Quote(s.Command))
		for j := range s.Points {
			p := &s.Points[j]
			emit("tiptop_range_cpu_pct", labels, p, p.CPUPct)
			emit("tiptop_range_ipc", labels, p, p.IPC)
			for k, v := range p.Values {
				if k >= len(res.Columns) {
					break
				}
				emit("tiptop_range_metric", labels+`,column=`+strconv.Quote(res.Columns[k]), p, v)
			}
		}
	}
	fmt.Fprintf(bw, "# EOF\n")
	return bw.Flush()
}

func formatRes(res *Result) string {
	return strconv.FormatFloat(res.ResolutionSeconds, 'g', -1, 64)
}

// Client queries a tiptopd's /api/v1/query endpoint — the range-query
// counterpart of remote.Client's live stream.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a query client for a daemon at base ("host:port" or
// a full URL; the /api/v1/query path is implied).
func NewClient(base string) (*Client, error) {
	if base == "" {
		return nil, fmt.Errorf("store: empty daemon address")
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	u, err := url.Parse(base)
	if err != nil {
		return nil, fmt.Errorf("store: bad daemon address: %w", err)
	}
	u.Path = strings.TrimSuffix(u.Path, "/")
	return &Client{base: u.String(), hc: &http.Client{}}, nil
}

// Get performs one GET against the daemon — path is the endpoint
// ("/api/v1/query") and v its parameters — and returns the response
// body. Non-200 responses are turned into errors carrying the server's
// {"error": ...} message, so callers layered on other endpoints (the
// expression query client in internal/query) share the transport and
// error handling.
func (c *Client) Get(path string, v url.Values) ([]byte, error) {
	u := c.base + path
	if enc := v.Encode(); enc != "" {
		u += "?" + enc
	}
	resp, err := c.hc.Get(u)
	if err != nil {
		return nil, fmt.Errorf("store: query: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("store: query: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		var e remote.APIError
		if json.Unmarshal(body, &e) == nil && e.Message != "" {
			msg := e.Message
			if e.Hint != "" {
				msg += " (" + e.Hint + ")"
			}
			return nil, fmt.Errorf("store: query: %s (HTTP %d)", msg, resp.StatusCode)
		}
		return nil, fmt.Errorf("store: query: HTTP %d", resp.StatusCode)
	}
	return body, nil
}

// Query runs one range query. extra parameters (e.g. the aggregator's
// agent selector) can be appended by name.
func (c *Client) Query(q QueryOptions, extra ...string) (*Result, error) {
	if len(extra)%2 != 0 {
		return nil, fmt.Errorf("store: extra query parameters must come in pairs")
	}
	v := url.Values{}
	if q.PID >= 0 {
		v.Set("pid", strconv.Itoa(q.PID))
	}
	if q.FromSeconds != 0 {
		v.Set("from", strconv.FormatFloat(q.FromSeconds, 'g', -1, 64))
	}
	if q.ToSeconds != 0 {
		v.Set("to", strconv.FormatFloat(q.ToSeconds, 'g', -1, 64))
	}
	if q.StepSeconds != 0 {
		v.Set("step", strconv.FormatFloat(q.StepSeconds, 'g', -1, 64))
	}
	for i := 0; i+1 < len(extra); i += 2 {
		v.Set(extra[i], extra[i+1])
	}
	body, err := c.Get("/api/v1/query", v)
	if err != nil {
		return nil, err
	}
	var res Result
	if err := json.Unmarshal(body, &res); err != nil {
		return nil, fmt.Errorf("store: query: bad response: %w", err)
	}
	return &res, nil
}
