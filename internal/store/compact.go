package store

// Compaction: rewriting a tier's sealed segments into record-format v2
// (recordv2.go). The rewrite merges restart-fragmented segments into
// full-size ones, replaces JSON payloads with the columnar layout, and
// optionally tombstones series that exited long ago. Query results are
// unchanged by construction — floats are carried bit-exactly — except
// that tombstoned rows disappear (the machine roll-up keeps their
// contribution; it is an aggregate of what happened, not of what is
// retained).
//
// Crash safety follows the name-carries-the-range protocol:
//
//  1. the merged output is written to "<tier>-<a>.cmpct" and fsynced;
//  2. it is renamed (published) to "<tier>-<a>-<b>.cseg", where [a, b]
//     is the sequence range of the segments it replaces;
//  3. the in-memory chain is swapped under the store lock;
//  4. the input files are unlinked.
//
// recover() finishes whatever step a crash interrupted: a .cmpct file
// is deleted (its inputs are intact), a published .cseg supersedes
// every segment file whose sequence range it contains. Retention is
// deferred while a rewrite is in flight so inputs cannot vanish
// mid-read; it catches up on the next append.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"tiptop/internal/hpm"
)

// CompactOptions tune a compaction pass. The zero value rewrites and
// merges every sealed segment and keeps every series.
type CompactOptions struct {
	// TombstoneAge drops the rows of tasks whose last record is older
	// than this relative to the newest input record — series that
	// exited long ago stop costing bytes in every refresh they lived
	// through. 0 keeps everything (required for byte-identical queries).
	TombstoneAge time.Duration
}

// TierCompaction reports one tier's rewrite.
type TierCompaction struct {
	Tier             string `json:"tier"`
	Segments         int    `json:"segments"`
	Records          int64  `json:"records"`
	BytesBefore      int64  `json:"bytes_before"`
	BytesAfter       int64  `json:"bytes_after"`
	TombstonedSeries int    `json:"tombstoned_series,omitempty"`
	DroppedRows      int64  `json:"dropped_rows,omitempty"`
}

// CompactionResult reports a whole compaction pass, one entry per tier
// that had anything to rewrite.
type CompactionResult struct {
	Tiers []TierCompaction `json:"tiers"`
}

// Compact rewrites every tier's sealed segments into the columnar v2
// layout, merging them into segments of Options.SegmentBytes. The
// active segments are untouched — appends and queries run concurrently
// with the rewrite (queries see the swap atomically). Calling Compact
// on a store with nothing to rewrite is a cheap no-op.
func (st *Store) Compact(opt CompactOptions) (*CompactionResult, error) {
	type job struct {
		t      *tier
		inputs []*segment
	}
	st.mu.Lock()
	if st.tiers == nil {
		st.mu.Unlock()
		return nil, errors.New("store: closed")
	}
	if st.compacting {
		st.mu.Unlock()
		return nil, errors.New("store: compaction already running")
	}
	var jobs []job
	for _, t := range st.tiers {
		inputs := append([]*segment(nil), t.sealed...)
		plain := 0
		for _, sg := range inputs {
			if sg.seqEnd == sg.seq && filepath.Ext(sg.path) == segmentExt {
				plain++
			}
		}
		// Worth rewriting: any not-yet-compacted segment, or two or more
		// compacted ones to merge. A single already-compacted segment
		// would be rewritten into itself.
		if plain == 0 && len(inputs) < 2 {
			continue
		}
		jobs = append(jobs, job{t: t, inputs: inputs})
	}
	st.compacting = len(jobs) > 0
	st.mu.Unlock()
	res := &CompactionResult{}
	if len(jobs) == 0 {
		return res, nil
	}
	defer func() {
		st.mu.Lock()
		st.compacting = false
		st.mu.Unlock()
	}()
	for _, j := range jobs {
		tc, outs, err := st.compactTier(j.t, j.inputs, opt)
		if err != nil {
			return res, err
		}
		if len(outs) > 0 {
			st.mu.Lock()
			if st.tiers == nil {
				st.mu.Unlock()
				return res, errors.New("store: closed during compaction")
			}
			// Retention was deferred, so the inputs are still the prefix
			// of the sealed chain; anything sealed since stays behind them.
			j.t.sealed = append(outs, j.t.sealed[len(j.inputs):]...)
			st.mu.Unlock()
			// An output spanning exactly one already-compacted input is
			// published over the input's own path (the name encodes the
			// sequence range) — that path now holds the output, so it
			// must survive the input cleanup.
			kept := make(map[string]bool, len(outs))
			for _, o := range outs {
				kept[o.path] = true
			}
			for _, in := range j.inputs {
				if !kept[in.path] {
					_ = os.Remove(in.path)
				}
			}
		}
		res.Tiers = append(res.Tiers, tc)
	}
	return res, nil
}

// compactTier rewrites one tier's inputs. Two streaming passes: the
// first builds the string dictionary and the per-series last-seen map,
// the second encodes. Runs without the store lock — inputs are sealed
// and retention is deferred.
func (st *Store) compactTier(t *tier, inputs []*segment, opt CompactOptions) (TierCompaction, []*segment, error) {
	tc := TierCompaction{Tier: tierNames[t.idx], Segments: len(inputs)}
	dict := newV2Dict()
	lastSeen := make(map[hpm.TaskID]time.Duration)
	var newest time.Duration
	for _, in := range inputs {
		tc.BytesBefore += in.size
		err := forEachRecord(in.path, in.size, func(rec *Record) error {
			tc.Records++
			rt := recTime(rec)
			if rt > newest {
				newest = rt
			}
			for i := range rec.Rows {
				r := &rec.Rows[i]
				dict.intern(r.User)
				dict.intern(r.Command)
				lastSeen[hpm.TaskID{PID: r.PID, TID: r.TID}] = rt
			}
			for _, c := range rec.Cols {
				dict.intern(c)
			}
			return nil
		})
		if err != nil {
			return tc, nil, err
		}
	}
	if tc.Records == 0 {
		return tc, nil, nil
	}
	var dead map[hpm.TaskID]bool
	if opt.TombstoneAge > 0 {
		horizon := newest - opt.TombstoneAge
		dead = make(map[hpm.TaskID]bool)
		for id, seen := range lastSeen {
			if seen < horizon {
				dead[id] = true
			}
		}
		tc.TombstonedSeries = len(dead)
	}
	w := &compactWriter{dir: st.dir, tier: tierNames[t.idx], dict: dict}
	var activeCols, writtenCols []string
	var filtered []RecordRow
	for i, in := range inputs {
		if w.f == nil {
			if err := w.start(in.seq); err != nil {
				return tc, nil, err
			}
			writtenCols = nil
		}
		err := forEachRecord(in.path, in.size, func(rec *Record) error {
			if len(rec.Cols) > 0 {
				activeCols = rec.Cols
			}
			out := *rec
			if len(dead) > 0 {
				filtered = filtered[:0]
				for i := range rec.Rows {
					r := &rec.Rows[i]
					if dead[hpm.TaskID{PID: r.PID, TID: r.TID}] {
						tc.DroppedRows++
						continue
					}
					filtered = append(filtered, *r)
				}
				out.Rows = filtered
			}
			// Each output segment's first record carries the columns in
			// force; mid-segment frames only carry a genuine change.
			if !sameCols(writtenCols, activeCols) {
				out.Cols = activeCols
				writtenCols = activeCols
			} else {
				out.Cols = nil
			}
			return w.record(&out)
		})
		if err != nil {
			w.abort()
			return tc, nil, err
		}
		w.b = in.seqEnd
		if w.size >= st.opt.SegmentBytes && i < len(inputs)-1 {
			if err := w.finish(); err != nil {
				return tc, nil, err
			}
		}
	}
	if err := w.finish(); err != nil {
		return tc, nil, err
	}
	for _, o := range w.outs {
		tc.BytesAfter += o.size
	}
	return tc, w.outs, nil
}

// recTime recovers a record's monotonic store time, through the same
// float path every prefix parser uses so boundaries agree.
func recTime(rec *Record) time.Duration {
	return time.Duration(rec.TimeSeconds * float64(time.Second))
}

func sameCols(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// forEachRecord streams the records of one segment's valid prefix in
// order, decoding each frame (dictionary frames fold into decoder
// state and are not surfaced).
func forEachRecord(path string, valid int64, fn func(*Record) error) error {
	fh, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer fh.Close()
	fr := newFrameReader(bufio.NewReaderSize(io.LimitReader(fh, valid), 1<<16))
	var fd frameDecoder
	for {
		payload, ok, rerr := fr.next()
		if rerr != nil {
			return rerr
		}
		if !ok {
			return nil
		}
		fr.accept()
		rec, derr := fd.decode(payload)
		if derr != nil {
			return derr
		}
		if rec == nil {
			continue
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// compactWriter produces the output segments of one tier's rewrite,
// one at a time: dictionary frame first, then data frames, finished by
// fsync + publish rename.
type compactWriter struct {
	dir, tier string
	dict      *v2Dict
	f         *os.File
	bw        *bufio.Writer
	tmpPath   string
	a, b      int64
	size      int64
	n         int64
	first     time.Duration
	last      time.Duration
	buf       []byte
	outs      []*segment
}

// start opens the unpublished output covering inputs from sequence a.
func (w *compactWriter) start(a int64) error {
	w.tmpPath = filepath.Join(w.dir, fmt.Sprintf("%s-%010d%s", w.tier, a, compactingExt))
	f, err := os.OpenFile(w.tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	w.f, w.bw = f, bufio.NewWriterSize(f, 1<<16)
	w.a, w.b = a, a
	w.size, w.n, w.first, w.last = 0, 0, 0, 0
	w.buf = w.dict.appendDictFrame(w.buf[:0])
	return w.writeFrame(w.buf)
}

// record encodes one record as a v2 data frame.
func (w *compactWriter) record(rec *Record) error {
	w.buf = appendV2Data(w.buf[:0], rec, w.dict)
	if err := w.writeFrame(w.buf); err != nil {
		return err
	}
	rt := recTime(rec)
	if w.n == 0 {
		w.first = rt
	}
	w.last = rt
	w.n++
	return nil
}

func (w *compactWriter) writeFrame(payload []byte) error {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if _, err := w.bw.Write(payload); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	w.size += int64(frameHeader + len(payload))
	return nil
}

// finish fsyncs and publishes the current output as a .cseg segment.
func (w *compactWriter) finish() error {
	if w.f == nil {
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		w.abort()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.abort()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := w.f.Close(); err != nil {
		w.f = nil
		_ = os.Remove(w.tmpPath)
		return fmt.Errorf("store: compact: %w", err)
	}
	w.f, w.bw = nil, nil
	final := compactedPath(w.dir, w.tier, w.a, w.b, compactedExt)
	if err := os.Rename(w.tmpPath, final); err != nil {
		_ = os.Remove(w.tmpPath)
		return fmt.Errorf("store: compact: %w", err)
	}
	// Make the publish durable before anyone unlinks the inputs.
	syncDir(w.dir)
	w.outs = append(w.outs, &segment{
		path: final, seq: w.a, seqEnd: w.b,
		size: w.size, n: w.n, first: w.first, last: w.last,
	})
	return nil
}

// abort discards the unpublished output.
func (w *compactWriter) abort() {
	if w.f != nil {
		_ = w.f.Close()
		w.f, w.bw = nil, nil
		_ = os.Remove(w.tmpPath)
	}
}

// syncDir best-effort fsyncs a directory so a rename is on disk before
// dependent deletes; not every platform supports it, and recovery is
// correct either way — this only narrows the window.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
