// Package binenc holds the low-level binary encoding primitives shared
// by the store's columnar record format v2 (internal/store) and the
// remote binary wire frame (internal/remote): unsigned and zigzag
// varints, length-prefixed strings, and an XOR-against-previous float
// codec that round-trips every float64 bit-exactly.
//
// The float codec is the load-bearing piece. Both consumers must
// reproduce their JSON twins byte-for-byte after a decode (the store's
// compaction golden test diffs Query output pre/post rewrite; the wire
// test diffs a binary round-trip against the JSON decode), so floats
// are never re-quantized: a value is stored as the XOR of its IEEE-754
// bits with the previous value's bits, with a one-byte control word
//
//	control = lo<<4 | n        (n = 1..8 significant bytes, lo = first)
//	control = 0x00             (bits identical to the previous value)
//
// followed by the n non-zero bytes of the XOR, little-endian from byte
// lo. Monitoring series change slowly — successive CPU percentages and
// IPC values share sign, exponent and leading mantissa bits — so the
// XOR is usually short, and an unchanged value costs one byte.
package binenc

import (
	"encoding/binary"
	"fmt"
	"math"
)

// AppendUvarint appends v in unsigned LEB128 form.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendVarint appends v zigzag-encoded, so small negatives stay small.
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// AppendString appends a length-prefixed string.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendFloat appends v encoded as the XOR of its bits with prev's.
func AppendFloat(b []byte, prev, v float64) []byte {
	x := math.Float64bits(v) ^ math.Float64bits(prev)
	if x == 0 {
		return append(b, 0)
	}
	lo := 0
	for x&0xff == 0 {
		x >>= 8
		lo++
	}
	n := 0
	tail := x
	for tail != 0 {
		tail >>= 8
		n++
	}
	b = append(b, byte(lo<<4|n))
	for i := 0; i < n; i++ {
		b = append(b, byte(x))
		x >>= 8
	}
	return b
}

// Reader decodes a buffer written with the Append functions. The first
// malformed read latches an error; every subsequent read returns zero
// values, so decoders can run a whole frame and check Err once.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps b for decoding.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decode error, nil while the stream is healthy.
func (r *Reader) Err() error { return r.err }

// Len returns the number of undecoded bytes remaining.
func (r *Reader) Len() int { return len(r.b) - r.off }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("binenc: truncated or corrupt %s at offset %d", what, r.off)
	}
}

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil || r.off >= len(r.b) {
		r.fail("byte")
		return 0
	}
	c := r.b[r.off]
	r.off++
	return c
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

// Varint reads a zigzag varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.off += n
	return v
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("string")
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// Float reads a float encoded by AppendFloat against prev.
func (r *Reader) Float(prev float64) float64 {
	ctrl := r.Byte()
	if r.err != nil {
		return 0
	}
	if ctrl == 0 {
		return prev
	}
	lo, n := int(ctrl>>4), int(ctrl&0xf)
	if n == 0 || n > 8 || lo > 7 || r.off+n > len(r.b) {
		r.fail("float")
		return 0
	}
	var x uint64
	for i := n - 1; i >= 0; i-- {
		x = x<<8 | uint64(r.b[r.off+i])
	}
	r.off += n
	return math.Float64frombits(math.Float64bits(prev) ^ x<<(8*lo))
}

// SkipFloat advances past one AppendFloat encoding without
// reconstructing the value. The control byte alone carries the width,
// so a reader can step over a whole XOR chain it does not need — the
// store's projected scan skips unreferenced columns this way. Skipping
// loses the chain's previous-value state, so it is only valid when
// every value of the chain is skipped.
func (r *Reader) SkipFloat() {
	r.SkipFloats(1)
}

// SkipFloats advances past count consecutive AppendFloat encodings —
// a whole chain in one call, without per-value call overhead.
func (r *Reader) SkipFloats(count int) {
	if r.err != nil {
		return
	}
	b, off := r.b, r.off
	for ; count > 0; count-- {
		if off >= len(b) {
			r.off = off
			r.fail("float")
			return
		}
		ctrl := b[off]
		off++
		if ctrl == 0 {
			continue
		}
		lo, n := int(ctrl>>4), int(ctrl&0xf)
		if n == 0 || n > 8 || lo > 7 || off+n > len(b) {
			r.off = off
			r.fail("float")
			return
		}
		off += n
	}
	r.off = off
}
