package binenc

import (
	"math"
	"testing"
)

func TestUvarintVarintRoundTrip(t *testing.T) {
	uvals := []uint64{0, 1, 127, 128, 1 << 20, math.MaxUint64}
	svals := []int64{0, 1, -1, 63, -64, 1 << 40, math.MinInt64, math.MaxInt64}
	var b []byte
	for _, v := range uvals {
		b = AppendUvarint(b, v)
	}
	for _, v := range svals {
		b = AppendVarint(b, v)
	}
	r := NewReader(b)
	for _, want := range uvals {
		if got := r.Uvarint(); got != want {
			t.Fatalf("uvarint: got %d want %d", got, want)
		}
	}
	for _, want := range svals {
		if got := r.Varint(); got != want {
			t.Fatalf("varint: got %d want %d", got, want)
		}
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatalf("%d bytes left over", r.Len())
	}
}

func TestStringRoundTrip(t *testing.T) {
	vals := []string{"", "root", "a command with spaces", "\x00\xff\"\\", "日本語"}
	var b []byte
	for _, s := range vals {
		b = AppendString(b, s)
	}
	r := NewReader(b)
	for _, want := range vals {
		if got := r.String(); got != want {
			t.Fatalf("string: got %q want %q", got, want)
		}
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestFloatRoundTripExact drives the XOR codec through values whose
// bit patterns must survive exactly — including NaN payloads, signed
// zero and subnormals — chained so each value's prev is the one before.
func TestFloatRoundTripExact(t *testing.T) {
	vals := []float64{
		0, 1, -1, 0.1, 3.14159, 97.3, 97.30000001, 1e308, -1e-308,
		math.Inf(1), math.Inf(-1), math.Float64frombits(0x7ff8000000000001),
		math.Copysign(0, -1), math.SmallestNonzeroFloat64, 12345.678,
		12345.678, // repeat: exercises the one-byte unchanged path
	}
	var b []byte
	prev := 0.0
	for _, v := range vals {
		b = AppendFloat(b, prev, v)
		prev = v
	}
	r := NewReader(b)
	prev = 0.0
	for i, want := range vals {
		got := r.Float(prev)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("float %d: got %x want %x", i, math.Float64bits(got), math.Float64bits(want))
		}
		prev = got
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatalf("%d bytes left over", r.Len())
	}
}

func TestFloatUnchangedIsOneByte(t *testing.T) {
	b := AppendFloat(nil, 97.3, 97.3)
	if len(b) != 1 || b[0] != 0 {
		t.Fatalf("unchanged float encoded as %v, want [0]", b)
	}
}

// TestReaderLatchesErrors confirms a truncated buffer fails loudly and
// stays failed instead of yielding garbage on later reads.
func TestReaderLatchesErrors(t *testing.T) {
	b := AppendString(nil, "hello")
	r := NewReader(b[:3]) // length prefix promises more than remains
	if got := r.String(); got != "" {
		t.Fatalf("truncated string decoded to %q", got)
	}
	if r.Err() == nil {
		t.Fatal("no error for truncated string")
	}
	if got := r.Uvarint(); got != 0 {
		t.Fatalf("read after error returned %d", got)
	}
	r2 := NewReader([]byte{0x18}) // control byte promises 8 bytes, none follow
	r2.Float(0)
	if r2.Err() == nil {
		t.Fatal("no error for truncated float")
	}
}

// TestSkipFloat confirms skipping advances exactly as far as decoding:
// a skipped chain leaves the reader positioned on the data that
// follows, and truncated encodings still fail loudly.
func TestSkipFloat(t *testing.T) {
	vals := []float64{0, 1.5, 1.5, -97.25, 3e300, math.Pi, 0.1}
	var b []byte
	prev := 0.0
	for _, v := range vals {
		b = AppendFloat(b, prev, v)
		prev = v
	}
	b = AppendUvarint(b, 424242)
	r := NewReader(b)
	for range vals {
		r.SkipFloat()
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if got := r.Uvarint(); got != 424242 {
		t.Fatalf("skip misaligned: trailing uvarint decoded to %d", got)
	}
	if r.Len() != 0 {
		t.Fatalf("%d bytes left over", r.Len())
	}

	r2 := NewReader([]byte{0x18}) // control byte promises 8 bytes, none follow
	r2.SkipFloat()
	if r2.Err() == nil {
		t.Fatal("no error for truncated skip")
	}
}
