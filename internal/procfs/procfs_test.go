package procfs

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// sampleStat builds a realistic stat line: pid, comm (possibly tricky),
// then 50-odd numeric fields with utime/stime/starttime/processor at the
// right positions.
func sampleStat(pid int, comm, state string, utimeTicks, stimeTicks, startTicks, processor int) string {
	// Fields after comm (0-indexed): state ppid pgrp session tty tpgid
	// flags minflt cminflt majflt cmajflt utime stime ...
	fields := make([]string, 45)
	for i := range fields {
		fields[i] = "0"
	}
	fields[0] = state
	fields[1] = "1" // ppid
	fields[11] = fmt.Sprint(utimeTicks)
	fields[12] = fmt.Sprint(stimeTicks)
	fields[19] = fmt.Sprint(startTicks)
	fields[36] = fmt.Sprint(processor)
	out := fmt.Sprintf("%d (%s) ", pid, comm)
	for i, f := range fields {
		if i > 0 {
			out += " "
		}
		out += f
	}
	return out
}

func TestParseStat(t *testing.T) {
	line := sampleStat(1234, "myproc", "R", 250, 50, 12345, 3)
	st, err := ParseStat(line)
	if err != nil {
		t.Fatal(err)
	}
	if st.PID != 1234 || st.Comm != "myproc" || st.State != "R" || st.PPID != 1 {
		t.Fatalf("parsed %+v", st)
	}
	if st.UTime != 2500*time.Millisecond {
		t.Fatalf("utime = %v", st.UTime)
	}
	if st.STime != 500*time.Millisecond {
		t.Fatalf("stime = %v", st.STime)
	}
	if st.CPUTime() != 3*time.Second {
		t.Fatalf("cputime = %v", st.CPUTime())
	}
	if st.StartTime != 123450*time.Millisecond {
		t.Fatalf("starttime = %v", st.StartTime)
	}
	if st.Processor != 3 {
		t.Fatalf("processor = %v", st.Processor)
	}
}

func TestParseStatTrickyComm(t *testing.T) {
	// comm containing spaces and parens: the classic parser trap.
	line := sampleStat(7, "evil (comm) name", "S", 1, 1, 1, 0)
	st, err := ParseStat(line)
	if err != nil {
		t.Fatal(err)
	}
	if st.Comm != "evil (comm) name" {
		t.Fatalf("comm = %q", st.Comm)
	}
	if st.State != "S" {
		t.Fatalf("state = %q", st.State)
	}
}

func TestParseStatErrors(t *testing.T) {
	bad := []string{
		"",
		"1234 no-parens R 1",
		"abc (x) R 1",
		"1 (x) R", // truncated
	}
	for _, line := range bad {
		if _, err := ParseStat(line); err == nil {
			t.Errorf("ParseStat(%q) should fail", line)
		}
	}
}

func TestParseUID(t *testing.T) {
	status := "Name:\tbash\nUid:\t1000\t1000\t1000\t1000\nGid:\t100\n"
	uid, err := ParseUID(status)
	if err != nil || uid != 1000 {
		t.Fatalf("uid = %d, %v", uid, err)
	}
	if _, err := ParseUID("Name: x\n"); err == nil {
		t.Fatal("missing Uid line should fail")
	}
	if _, err := ParseUID("Uid:\tzzz\n"); err == nil {
		t.Fatal("bad uid should fail")
	}
}

func TestParseUptime(t *testing.T) {
	up, err := ParseUptime("12345.67 99999.99\n")
	if err != nil {
		t.Fatal(err)
	}
	want := time.Duration(12345.67 * float64(time.Second))
	if up != want {
		t.Fatalf("uptime = %v, want %v", up, want)
	}
	if _, err := ParseUptime(""); err == nil {
		t.Fatal("empty uptime should fail")
	}
	if _, err := ParseUptime("abc"); err == nil {
		t.Fatal("bad uptime should fail")
	}
}

// buildFakeProc creates a miniature /proc with two processes and one
// multi-threaded task.
func buildFakeProc(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	write := func(rel, content string) {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("uptime", "500.00 900.00\n")
	write("100/stat", sampleStat(100, "alpha", "R", 100, 20, 1000, 2))
	write("100/status", "Name:\talpha\nUid:\t0\t0\t0\t0\n")
	write("100/task/100/stat", sampleStat(100, "alpha", "R", 60, 10, 1000, 2))
	write("100/task/101/stat", sampleStat(100, "alpha", "S", 40, 10, 1001, 3))
	write("200/stat", sampleStat(200, "beta", "S", 5, 5, 2000, 0))
	write("200/status", "Name:\tbeta\nUid:\t0\t0\t0\t0\n")
	// Non-numeric entries must be skipped.
	write("self/stat", "not parsed")
	write("cmdline", "irrelevant")
	return root
}

func TestSnapshotPerProcess(t *testing.T) {
	src := NewSource(buildFakeProc(t))
	infos, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("tasks = %d, want 2: %+v", len(infos), infos)
	}
	if infos[0].ID.PID != 100 || infos[1].ID.PID != 200 {
		t.Fatalf("order: %+v", infos)
	}
	a := infos[0]
	if a.Comm != "alpha" || a.State != "R" || a.LastCPU != 2 {
		t.Fatalf("alpha = %+v", a)
	}
	if a.CPUTime != 1200*time.Millisecond {
		t.Fatalf("alpha cputime = %v", a.CPUTime)
	}
	if a.User != "root" && a.User != "0" {
		t.Fatalf("alpha user = %q", a.User)
	}
}

func TestSnapshotPerThread(t *testing.T) {
	src := NewSource(buildFakeProc(t))
	src.PerThread = true
	infos, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// 2 threads of pid 100; pid 200 has no task dir and is skipped in
	// thread mode (vanishing-task race path).
	if len(infos) != 2 {
		t.Fatalf("tasks = %d: %+v", len(infos), infos)
	}
	if infos[0].ID.TID != 100 || infos[1].ID.TID != 101 {
		t.Fatalf("tids: %+v", infos)
	}
	if !infos[0].ID.IsProcess() || infos[1].ID.IsProcess() {
		t.Fatal("leader/thread classification")
	}
}

func TestSnapshotMissingRoot(t *testing.T) {
	src := NewSource("/nonexistent/proc")
	if _, err := src.Snapshot(); err == nil {
		t.Fatal("missing root must error")
	}
}

func TestUptime(t *testing.T) {
	src := NewSource(buildFakeProc(t))
	up, err := src.Uptime()
	if err != nil || up != 500*time.Second {
		t.Fatalf("uptime = %v, %v", up, err)
	}
}

func TestDefaultRoot(t *testing.T) {
	if NewSource("").Root != "/proc" {
		t.Fatal("default root must be /proc")
	}
}

func TestRealProcIfAvailable(t *testing.T) {
	if _, err := os.Stat("/proc/self/stat"); err != nil {
		t.Skip("no real /proc")
	}
	src := NewSource("")
	infos, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) == 0 {
		t.Fatal("real /proc should list at least this test process")
	}
	self := os.Getpid()
	found := false
	for _, info := range infos {
		if info.ID.PID == self {
			found = true
			if info.Comm == "" {
				t.Fatal("own comm empty")
			}
		}
	}
	if !found {
		t.Fatalf("own pid %d not in snapshot", self)
	}
}
