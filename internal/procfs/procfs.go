// Package procfs reads the Linux /proc filesystem: process and thread
// enumeration, per-task CPU accounting, command names and owners. It is
// the real-machine implementation of the engine's process source, serving
// the role §2.3 describes: "Additional information such as %CPU,
// processor on which a task is running, etc. is retrieved from the /proc
// filesystem."
//
// The root directory is configurable so tests exercise the parser against
// a synthetic tree.
package procfs

import (
	"fmt"
	"os"
	"os/user"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"tiptop/internal/core"
	"tiptop/internal/hpm"
)

// userHz is the kernel's USER_HZ a.k.a. clock tick: the unit of utime and
// stime in /proc/<pid>/stat. It has been 100 on every mainstream Linux
// configuration for decades; sysconf(_SC_CLK_TCK) would need cgo.
const userHz = 100

// Stat is the parsed, relevant subset of /proc/<pid>/stat.
type Stat struct {
	PID       int
	Comm      string
	State     string
	PPID      int
	UTime     time.Duration // user-mode CPU time
	STime     time.Duration // kernel-mode CPU time
	StartTime time.Duration // since boot
	Processor int           // CPU last executed on
}

// CPUTime returns total on-CPU time.
func (s *Stat) CPUTime() time.Duration { return s.UTime + s.STime }

// ParseStat parses the contents of a stat file. The comm field is
// enclosed in parentheses and may itself contain spaces and parentheses;
// the parser anchors on the *last* closing parenthesis, as all robust
// /proc consumers must.
func ParseStat(data string) (*Stat, error) {
	open := strings.IndexByte(data, '(')
	closeIdx := strings.LastIndexByte(data, ')')
	if open < 0 || closeIdx < open {
		return nil, fmt.Errorf("procfs: malformed stat: no comm field")
	}
	pidStr := strings.TrimSpace(data[:open])
	pid, err := strconv.Atoi(pidStr)
	if err != nil {
		return nil, fmt.Errorf("procfs: bad pid %q: %v", pidStr, err)
	}
	comm := data[open+1 : closeIdx]
	rest := strings.Fields(data[closeIdx+1:])
	// Fields after comm, 0-indexed: 0=state 1=ppid ... 11=utime 12=stime
	// ... 19=starttime ... 36=processor.
	if len(rest) < 20 {
		return nil, fmt.Errorf("procfs: truncated stat: %d fields", len(rest))
	}
	atoi := func(i int) (int64, error) {
		if i >= len(rest) {
			return 0, nil
		}
		return strconv.ParseInt(rest[i], 10, 64)
	}
	ppid, err := atoi(1)
	if err != nil {
		return nil, fmt.Errorf("procfs: bad ppid: %v", err)
	}
	utime, err := atoi(11)
	if err != nil {
		return nil, fmt.Errorf("procfs: bad utime: %v", err)
	}
	stime, err := atoi(12)
	if err != nil {
		return nil, fmt.Errorf("procfs: bad stime: %v", err)
	}
	start, err := atoi(19)
	if err != nil {
		return nil, fmt.Errorf("procfs: bad starttime: %v", err)
	}
	proc, err := atoi(36)
	if err != nil {
		proc = 0
	}
	ticks := func(v int64) time.Duration {
		return time.Duration(v) * time.Second / userHz
	}
	return &Stat{
		PID:       pid,
		Comm:      comm,
		State:     rest[0],
		PPID:      int(ppid),
		UTime:     ticks(utime),
		STime:     ticks(stime),
		StartTime: ticks(start),
		Processor: int(proc),
	}, nil
}

// ParseUID extracts the real UID from /proc/<pid>/status content.
func ParseUID(status string) (int, error) {
	for _, line := range strings.Split(status, "\n") {
		if rest, ok := strings.CutPrefix(line, "Uid:"); ok {
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				break
			}
			uid, err := strconv.Atoi(fields[0])
			if err != nil {
				return 0, fmt.Errorf("procfs: bad uid %q: %v", fields[0], err)
			}
			return uid, nil
		}
	}
	return 0, fmt.Errorf("procfs: no Uid line in status")
}

// ParseUptime parses /proc/uptime, returning system uptime.
func ParseUptime(data string) (time.Duration, error) {
	fields := strings.Fields(data)
	if len(fields) == 0 {
		return 0, fmt.Errorf("procfs: empty uptime")
	}
	secs, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0, fmt.Errorf("procfs: bad uptime %q: %v", fields[0], err)
	}
	return time.Duration(secs * float64(time.Second)), nil
}

// Source lists tasks from a /proc tree.
type Source struct {
	// Root is the proc mount point; defaults to "/proc".
	Root string
	// PerThread lists individual threads from /proc/<pid>/task rather
	// than one entry per process (paper §2.2: "Events can be counted
	// per thread, or per process").
	PerThread bool
	// SystemWide replaces the task list with one pseudo-task per
	// logical CPU (IDs hpm.CPUTask(n), from /proc/stat): attaching
	// counters to such rows opens perf_event with pid=-1, cpu=N and
	// counts everything on that CPU. PerThread is ignored in this mode.
	SystemWide bool
	// userCache memoizes uid -> name lookups.
	userCache map[int]string
}

var _ core.ProcSource = (*Source)(nil)

// NewSource creates a Source over the given root ("" = /proc).
func NewSource(root string) *Source {
	if root == "" {
		root = "/proc"
	}
	return &Source{Root: root, userCache: make(map[int]string)}
}

// Snapshot implements core.ProcSource.
func (s *Source) Snapshot() ([]core.TaskInfo, error) {
	if s.SystemWide {
		return s.cpuSnapshot()
	}
	entries, err := os.ReadDir(s.Root)
	if err != nil {
		return nil, fmt.Errorf("procfs: %w", err)
	}
	var out []core.TaskInfo
	for _, e := range entries {
		pid, err := strconv.Atoi(e.Name())
		if err != nil || pid <= 0 {
			continue
		}
		if s.PerThread {
			tids, err := s.threadIDs(pid)
			if err != nil {
				continue // process vanished mid-scan
			}
			for _, tid := range tids {
				info, err := s.taskInfo(pid, tid)
				if err != nil {
					continue
				}
				out = append(out, info)
			}
			continue
		}
		info, err := s.taskInfo(pid, pid)
		if err != nil {
			continue // processes come and go; skip races
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID.PID != out[j].ID.PID {
			return out[i].ID.PID < out[j].ID.PID
		}
		return out[i].ID.TID < out[j].ID.TID
	})
	return out, nil
}

func (s *Source) threadIDs(pid int) ([]int, error) {
	entries, err := os.ReadDir(filepath.Join(s.Root, strconv.Itoa(pid), "task"))
	if err != nil {
		return nil, err
	}
	tids := make([]int, 0, len(entries))
	for _, e := range entries {
		if tid, err := strconv.Atoi(e.Name()); err == nil {
			tids = append(tids, tid)
		}
	}
	return tids, nil
}

func (s *Source) taskInfo(pid, tid int) (core.TaskInfo, error) {
	base := filepath.Join(s.Root, strconv.Itoa(pid))
	statPath := filepath.Join(base, "stat")
	if tid != pid {
		statPath = filepath.Join(base, "task", strconv.Itoa(tid), "stat")
	}
	raw, err := os.ReadFile(statPath)
	if err != nil {
		return core.TaskInfo{}, err
	}
	st, err := ParseStat(string(raw))
	if err != nil {
		return core.TaskInfo{}, err
	}
	statusRaw, err := os.ReadFile(filepath.Join(base, "status"))
	userName := "?"
	if err == nil {
		if uid, err := ParseUID(string(statusRaw)); err == nil {
			userName = s.userName(uid)
		}
	}
	return core.TaskInfo{
		ID:        hpm.TaskID{PID: pid, TID: tid},
		User:      userName,
		Comm:      st.Comm,
		State:     st.State,
		CPUTime:   st.CPUTime(),
		StartTime: st.StartTime,
		LastCPU:   st.Processor,
	}, nil
}

// CPUStat is one per-CPU line of /proc/stat.
type CPUStat struct {
	CPU  int
	Busy time.Duration // everything but idle and iowait
}

// ParseCPUStats extracts the per-CPU accounting lines ("cpu0 ...",
// "cpu1 ...") from /proc/stat content. The aggregate "cpu " line is
// skipped. Busy time sums every column except idle (4th) and iowait
// (5th), in USER_HZ ticks like the rest of /proc.
func ParseCPUStats(data string) ([]CPUStat, error) {
	var out []CPUStat
	for _, line := range strings.Split(data, "\n") {
		rest, ok := strings.CutPrefix(line, "cpu")
		if !ok || len(rest) == 0 || rest[0] == ' ' || rest[0] == '\t' {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) < 5 {
			continue
		}
		n, err := strconv.Atoi(fields[0])
		if err != nil {
			continue
		}
		var busy int64
		for i, f := range fields[1:] {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("procfs: bad cpu%d stat field %q: %v", n, f, err)
			}
			if i == 3 || i == 4 { // idle, iowait
				continue
			}
			busy += v
		}
		out = append(out, CPUStat{CPU: n, Busy: time.Duration(busy) * time.Second / userHz})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("procfs: no per-cpu lines in stat")
	}
	return out, nil
}

// cpuSnapshot lists one pseudo-task per logical CPU from /proc/stat.
// CPUTime is the CPU's cumulative busy time, so the engine's %CPU
// column becomes per-CPU utilization.
func (s *Source) cpuSnapshot() ([]core.TaskInfo, error) {
	raw, err := os.ReadFile(filepath.Join(s.Root, "stat"))
	if err != nil {
		return nil, fmt.Errorf("procfs: %w", err)
	}
	stats, err := ParseCPUStats(string(raw))
	if err != nil {
		return nil, err
	}
	out := make([]core.TaskInfo, 0, len(stats))
	for _, st := range stats {
		out = append(out, core.TaskInfo{
			ID:      hpm.CPUTask(st.CPU),
			User:    "system",
			Comm:    fmt.Sprintf("cpu%d", st.CPU),
			State:   "R",
			CPUTime: st.Busy,
			LastCPU: st.CPU,
		})
	}
	return out, nil
}

func (s *Source) userName(uid int) string {
	if name, ok := s.userCache[uid]; ok {
		return name
	}
	name := strconv.Itoa(uid)
	if u, err := user.LookupId(name); err == nil {
		name = u.Username
	}
	s.userCache[uid] = name
	return name
}

// Uptime reads system uptime from the source's root.
func (s *Source) Uptime() (time.Duration, error) {
	raw, err := os.ReadFile(filepath.Join(s.Root, "uptime"))
	if err != nil {
		return 0, fmt.Errorf("procfs: %w", err)
	}
	return ParseUptime(string(raw))
}
