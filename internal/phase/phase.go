// Package phase detects program phases in metric time series. The
// paper's §3.2 argues that coarse counter samples expose application
// phases "at the full running speed of the application" and proposes
// using the resulting profiles to pick per-platform fast-forward points
// for simulation studies (the Figure 8 use case, refining SimPoints).
// This package provides that analysis: change-point segmentation of an
// IPC (or any metric) series, plus the drop detector used to spot the
// §3.1 anomaly automatically.
package phase

import (
	"fmt"
	"math"

	"tiptop/internal/stats"
)

// Segment is one detected phase: a half-open sample-index interval with
// its mean metric level.
type Segment struct {
	Start, End int // [Start, End) in sample indices
	Mean       float64
}

// Len returns the segment length in samples.
func (s Segment) Len() int { return s.End - s.Start }

// Options tune the detector.
type Options struct {
	// MinLen is the minimum segment length in samples (default 5):
	// shorter excursions are treated as noise, like the brief pulses
	// of Figure 3 (a).
	MinLen int
	// Threshold is the relative level change that opens a new segment
	// (default 0.25 = 25 %): the paper's phases differ by far more.
	Threshold float64
	// Smooth is the moving-average window applied before detection
	// (default 3).
	Smooth int
}

func (o Options) normalized() Options {
	if o.MinLen <= 0 {
		o.MinLen = 5
	}
	if o.Threshold <= 0 {
		o.Threshold = 0.25
	}
	if o.Smooth <= 0 {
		o.Smooth = 3
	}
	return o
}

// Detect segments ys into phases. The algorithm is a running-mean
// comparator: a candidate boundary opens when the smoothed signal
// departs from the current segment's mean by more than Threshold
// (relatively), and commits once the departure persists for MinLen
// samples; the departure onset becomes the boundary. This is
// deliberately simple — the paper's point is that phases are visible to
// the naked eye at 1–10 s sampling — but it is robust to the pulse
// noise the R workload produces.
func Detect(ys []float64, opt Options) []Segment {
	opt = opt.normalized()
	if len(ys) == 0 {
		return nil
	}
	smoothed := stats.MovingAverage(ys, opt.Smooth)

	var segs []Segment
	start := 0
	mean := smoothed[0]
	n := 1.0
	departAt := -1

	relDiff := func(a, b float64) float64 {
		denom := math.Abs(a)
		if math.Abs(b) > denom {
			denom = math.Abs(b)
		}
		if denom == 0 {
			return 0
		}
		return math.Abs(a-b) / denom
	}

	commit := func(end int) {
		if end <= start {
			return
		}
		segs = append(segs, Segment{Start: start, End: end, Mean: stats.Mean(ys[start:end])})
	}

	for i := 1; i < len(smoothed); i++ {
		if relDiff(smoothed[i], mean) > opt.Threshold {
			if departAt < 0 {
				departAt = i
			}
			// Persistent departure: commit the old segment. The new
			// baseline is the *latest* smoothed value — the departure
			// window straddles the transition ramp and its mean would
			// immediately trigger a spurious second boundary.
			if i-departAt+1 >= opt.MinLen {
				commit(departAt)
				start = departAt
				mean = smoothed[i]
				n = 1
				departAt = -1
			}
			continue
		}
		// Back inside the band: the departure was a pulse.
		departAt = -1
		mean = (mean*n + smoothed[i]) / (n + 1)
		n++
	}
	commit(len(ys))
	return mergeShort(ys, segs, opt.MinLen)
}

// mergeShort folds segments shorter than minLen into their neighbour:
// level transitions pass through the smoothing window and can leave a
// ramp sliver between two genuine phases.
func mergeShort(ys []float64, segs []Segment, minLen int) []Segment {
	if len(segs) <= 1 {
		return segs
	}
	out := make([]Segment, 0, len(segs))
	for _, s := range segs {
		if s.Len() >= minLen || len(out) == 0 && s.End == len(ys) {
			out = append(out, s)
			continue
		}
		if len(out) > 0 {
			// Fold into the previous segment.
			prev := &out[len(out)-1]
			prev.End = s.End
			prev.Mean = stats.Mean(ys[prev.Start:prev.End])
		} else {
			// Leading sliver: prepend to the next by carrying the
			// start forward (handled by extending the sliver itself
			// and merging when the next long segment arrives).
			out = append(out, s)
		}
	}
	// A leading sliver followed by a long segment: fold forward.
	if len(out) >= 2 && out[0].Len() < minLen {
		out[1].Start = out[0].Start
		out[1].Mean = stats.Mean(ys[out[1].Start:out[1].End])
		out = out[1:]
	}
	return out
}

// DropPoint returns the index where the series first collapses below
// half of its established healthy level, or -1 when no collapse exists.
// It is the automated version of the paper's §3.1 observation ("After
// 953 time steps, the IPC suddenly drops").
func DropPoint(ys []float64) int {
	if len(ys) < 2 {
		return -1
	}
	warm := 5
	if len(ys) < warm {
		warm = len(ys)
	}
	healthy := stats.Mean(ys[:warm])
	if healthy <= 0 {
		return -1
	}
	for i, y := range ys {
		if y < healthy/2 {
			return i
		}
	}
	return -1
}

// FastForward suggests a per-platform fast-forward point (in cumulative
// instructions) for simulation studies: the start of the first segment
// that is at least minFrac of the run, skipping the initialization
// phase — the Figure 8 methodology. xs are cumulative instruction counts
// aligned with ys.
func FastForward(xs, ys []float64, minFrac float64) (float64, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0, fmt.Errorf("phase: need aligned non-empty series")
	}
	if minFrac <= 0 || minFrac >= 1 {
		minFrac = 0.1
	}
	segs := Detect(ys, Options{})
	total := len(ys)
	for _, s := range segs {
		if s.Start == 0 {
			continue // skip initialization
		}
		if float64(s.Len())/float64(total) >= minFrac {
			return xs[s.Start], nil
		}
	}
	// Single-phase program: no skipping needed.
	return xs[0], nil
}
