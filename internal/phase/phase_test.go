package phase

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// synth builds a noisy piecewise-constant series.
func synth(levels []float64, lens []int, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	var ys []float64
	for i, level := range levels {
		for j := 0; j < lens[i]; j++ {
			ys = append(ys, level*(1+noise*(2*rng.Float64()-1)))
		}
	}
	return ys
}

func TestDetectTwoPhases(t *testing.T) {
	ys := synth([]float64{1.0, 0.03}, []int{100, 200}, 0.05, 1)
	segs := Detect(ys, Options{})
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2: %+v", len(segs), segs)
	}
	if segs[0].Start != 0 || segs[1].End != len(ys) {
		t.Fatalf("coverage: %+v", segs)
	}
	// Boundary within a few samples of 100.
	if b := segs[1].Start; b < 95 || b > 108 {
		t.Fatalf("boundary = %d, want ~100", b)
	}
	if !(segs[0].Mean > 0.9 && segs[1].Mean < 0.1) {
		t.Fatalf("means: %+v", segs)
	}
}

func TestDetectIgnoresPulses(t *testing.T) {
	// A low phase with brief high pulses (the Figure 3a shape): pulses
	// shorter than MinLen must not split the segment.
	ys := synth([]float64{1.0}, []int{50}, 0.02, 2)
	low := synth([]float64{0.05}, []int{150}, 0.02, 3)
	for i := 10; i < len(low); i += 25 {
		low[i] = 1.0 // single-sample pulse
	}
	ys = append(ys, low...)
	segs := Detect(ys, Options{MinLen: 5})
	if len(segs) != 2 {
		t.Fatalf("pulses must not fragment: %d segments %+v", len(segs), segs)
	}
}

func TestDetectMultiPhase(t *testing.T) {
	ys := synth([]float64{1.2, 0.7, 1.1, 0.6}, []int{80, 90, 70, 60}, 0.03, 4)
	segs := Detect(ys, Options{})
	if len(segs) != 4 {
		t.Fatalf("segments = %d, want 4: %+v", len(segs), segs)
	}
	// Means alternate high/low as constructed.
	if !(segs[0].Mean > segs[1].Mean && segs[2].Mean > segs[3].Mean && segs[1].Mean < segs[2].Mean) {
		t.Fatalf("means: %+v", segs)
	}
}

func TestDetectEdgeCases(t *testing.T) {
	if segs := Detect(nil, Options{}); segs != nil {
		t.Fatal("empty input yields no segments")
	}
	segs := Detect([]float64{1}, Options{})
	if len(segs) != 1 || segs[0].Len() != 1 {
		t.Fatalf("singleton: %+v", segs)
	}
	// Constant series: one segment.
	flat := synth([]float64{2}, []int{300}, 0, 5)
	if segs := Detect(flat, Options{}); len(segs) != 1 {
		t.Fatalf("flat series: %+v", segs)
	}
	// Zero-valued series must not divide by zero.
	zeros := make([]float64, 50)
	if segs := Detect(zeros, Options{}); len(segs) != 1 {
		t.Fatalf("zero series: %+v", segs)
	}
}

func TestDropPoint(t *testing.T) {
	ys := synth([]float64{1.0, 0.03}, []int{120, 80}, 0.05, 6)
	d := DropPoint(ys)
	if d < 115 || d > 125 {
		t.Fatalf("drop = %d, want ~120", d)
	}
	if DropPoint(synth([]float64{1.0}, []int{100}, 0.05, 7)) != -1 {
		t.Fatal("healthy series has no drop")
	}
	if DropPoint(nil) != -1 || DropPoint([]float64{1}) != -1 {
		t.Fatal("degenerate inputs")
	}
	if DropPoint(make([]float64, 10)) != -1 {
		t.Fatal("all-zero series has no healthy level")
	}
}

func TestFastForward(t *testing.T) {
	// init (short, high) then main phase: fast-forward lands at the
	// main phase's first instruction.
	ys := synth([]float64{1.8, 0.9}, []int{30, 270}, 0.02, 8)
	xs := make([]float64, len(ys))
	cum := 0.0
	for i, y := range ys {
		cum += y * 1000 // instructions proportional to IPC
		xs[i] = cum
	}
	ff, err := FastForward(xs, ys, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// The boundary is near sample 30.
	if ff < xs[25] || ff > xs[40] {
		t.Fatalf("fast-forward = %v, want near xs[30]=%v", ff, xs[30])
	}
	// Single-phase: no skip.
	flat := synth([]float64{1.0}, []int{100}, 0.02, 9)
	ff2, err := FastForward(xs[:100], flat, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if ff2 != xs[0] {
		t.Fatalf("single phase fast-forward = %v, want %v", ff2, xs[0])
	}
	if _, err := FastForward(nil, nil, 0.2); err == nil {
		t.Fatal("empty input must error")
	}
	if _, err := FastForward(xs, ys[:10], 0.2); err == nil {
		t.Fatal("misaligned input must error")
	}
}

// Property: segments always partition the series exactly (coverage with
// no gaps or overlaps) for arbitrary level/length structures.
func TestPropSegmentsPartition(t *testing.T) {
	f := func(seed int64, l1, l2, l3 uint8) bool {
		lens := []int{int(l1)%80 + 10, int(l2)%80 + 10, int(l3)%80 + 10}
		ys := synth([]float64{1.5, 0.4, 1.1}, lens, 0.03, seed)
		segs := Detect(ys, Options{})
		if len(segs) == 0 {
			return false
		}
		pos := 0
		for _, s := range segs {
			if s.Start != pos || s.End <= s.Start {
				return false
			}
			pos = s.End
		}
		return pos == len(ys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
