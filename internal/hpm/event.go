package hpm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// The event model is descriptor-based rather than a closed enum: every
// countable event is an EventDesc carrying its canonical name and its
// perf_event encoding (attr.Type / attr.Config), collected in a
// Registry. The engine resolves the identifiers a screen references
// against a registry, backends negotiate support per descriptor, and
// everything downstream of the backend (rows, recorders, the wire
// format) carries the stable canonical *name*. Adding an event —
// a model-specific raw code, a hw-cache event, a user definition from
// the XML configuration — therefore never reopens this package; this is
// the paper's §2.2 flexibility claim ("the tool ... lets users monitor
// any target-specific event") made structural.

// EventKind classifies how an event is encoded.
type EventKind uint8

const (
	// KindGeneric is one of the portable generic hardware events every
	// backend must support (PERF_TYPE_HARDWARE).
	KindGeneric EventKind = iota
	// KindHWCache is a hardware cache event (PERF_TYPE_HW_CACHE),
	// encoded as cache-id | op<<8 | result<<16.
	KindHWCache
	// KindRaw is a model-specific raw event code looked up in the
	// vendor's architecture manual (PERF_TYPE_RAW).
	KindRaw
	// KindSoftware is a kernel-counted software event
	// (PERF_TYPE_SOFTWARE): page faults, context switches, CPU
	// migrations. Software events occupy no PMU register and are never
	// multiplexed.
	KindSoftware
)

// String names the kind as used in listings and configuration errors.
func (k EventKind) String() string {
	switch k {
	case KindGeneric:
		return "generic"
	case KindHWCache:
		return "hw-cache"
	case KindRaw:
		return "raw"
	case KindSoftware:
		return "software"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// perf_event_attr.Type values (include/uapi/linux/perf_event.h) the
// descriptors encode against.
const (
	PerfTypeHardware = 0
	PerfTypeSoftware = 1
	PerfTypeHWCache  = 3
	PerfTypeRaw      = 4
)

// PERF_TYPE_HARDWARE config values: the portable "generic events" the
// paper's default configuration uses.
const (
	HWCPUCycles          = 0
	HWInstructions       = 1
	HWCacheReferences    = 2
	HWCacheMisses        = 3
	HWBranchInstructions = 4
	HWBranchMisses       = 5
)

// PERF_TYPE_SOFTWARE config values for the kernel-counted software
// events system-wide mode displays alongside the hardware counters.
const (
	SWPageFaults    = 2
	SWCtxSwitches   = 3
	SWCPUMigrations = 4
)

// EventDesc describes one countable event: the canonical upper-case
// name metric expressions and configuration files reference, the kind,
// the perf_event encoding backends negotiate against, an optional unit
// and a one-line description for listings.
type EventDesc struct {
	Name   string
	Kind   EventKind
	Type   uint32 // perf_event_attr.Type
	Config uint64 // perf_event_attr.Config
	Unit   string // "" means a plain occurrence count
	Desc   string
}

// Valid reports whether the descriptor names an event.
func (d EventDesc) Valid() bool { return d.Name != "" }

// String returns the canonical event name.
func (d EventDesc) String() string { return d.Name }

// Generic reports whether the event is one of the portable generic
// events every backend must support. Backends may reject non-generic
// events with ErrUnsupportedEvent.
func (d EventDesc) Generic() bool { return d.Kind == KindGeneric }

// Encoding renders the perf encoding for listings ("type=4
// config=0x1ef7").
func (d EventDesc) Encoding() string {
	return fmt.Sprintf("type=%d config=0x%x", d.Type, d.Config)
}

// Canonical names of the built-in events of DefaultRegistry. They are
// plain strings so event maps keyed by name index directly with them.
const (
	EventCycles          = "CYCLES"
	EventInstructions    = "INSTRUCTIONS"
	EventCacheReferences = "CACHE_REFERENCES" // last-level cache references
	EventCacheMisses     = "CACHE_MISSES"     // last-level cache misses
	EventBranches        = "BRANCHES"
	EventBranchMisses    = "BRANCH_MISSES"
	// Architecture-specific events (paper §2.2: "the tool is very
	// flexible and lets users monitor any target-specific event").
	EventFPAssist = "FP_ASSIST" // micro-code assisted FP operations (Intel specific)
	EventL2Misses = "L2_MISSES"
	EventLoads    = "LOADS"
	EventStores   = "STORES"
	EventFPOps    = "FP_OPS"
	// EventMemStallCycles counts cycles stalled on memory (LLC-miss
	// latency). The paper's §3.4 names memory-access-latency counters
	// as future work for detecting DRAM-level contention; this event
	// implements that extension.
	EventMemStallCycles = "MEM_STALL_CYCLES"
	// Software events (PERF_TYPE_SOFTWARE): counted by the kernel, not
	// the PMU, so they cost no counter slot and are always exact.
	EventPageFaults    = "PAGE_FAULTS"
	EventCtxSwitches   = "CONTEXT_SWITCHES"
	EventCPUMigrations = "CPU_MIGRATIONS"
)

// Registry is an ordered, named collection of event descriptors: the
// universe of events a session can reference. A registry starts from
// the defaults (DefaultRegistry) and grows by Register — typically from
// <event> definitions in the XML configuration.
type Registry struct {
	byName map[string]EventDesc
	order  []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]EventDesc)}
}

// DefaultRegistry returns a fresh registry holding the built-in events:
// the six portable generic events plus the architecture-specific events
// the paper's use cases need, encoded with the reference raw codes of
// the machines the paper used (Intel SDM, Nehalem/Westmere — real
// deployments on other micro-architectures register their own codes;
// the tool is "fully customizable").
func DefaultRegistry() *Registry {
	r := NewRegistry()
	mustRegister := func(d EventDesc) {
		if err := r.Register(d); err != nil {
			panic(err) // defaults are known-valid
		}
	}
	generic := func(name string, config uint64, desc string) {
		mustRegister(EventDesc{Name: name, Kind: KindGeneric, Type: PerfTypeHardware, Config: config, Desc: desc})
	}
	raw := func(name string, config uint64, unit, desc string) {
		mustRegister(EventDesc{Name: name, Kind: KindRaw, Type: PerfTypeRaw, Config: config, Unit: unit, Desc: desc})
	}
	generic(EventCycles, HWCPUCycles, "execution cycles")
	generic(EventInstructions, HWInstructions, "instructions retired")
	generic(EventCacheReferences, HWCacheReferences, "last-level cache references")
	generic(EventCacheMisses, HWCacheMisses, "last-level cache misses")
	generic(EventBranches, HWBranchInstructions, "retired branch instructions")
	generic(EventBranchMisses, HWBranchMisses, "mispredicted branches")
	// The paper's §3.1 example: FP_ASSIST on Nehalem, event 0xF7
	// umask 0x1E.
	raw(EventFPAssist, 0x1EF7, "", "micro-code assisted FP operations (FP_ASSIST.ALL)")
	raw(EventL2Misses, 0xAA24, "", "L2 cache misses (L2_RQSTS.MISS)")
	raw(EventLoads, 0x010B, "", "retired loads (MEM_INST_RETIRED.LOADS)")
	raw(EventStores, 0x020B, "", "retired stores (MEM_INST_RETIRED.STORES)")
	raw(EventFPOps, 0xFF10, "", "FP operations executed (FP_COMP_OPS_EXE.ANY)")
	raw(EventMemStallCycles, 0x06A3, "cycles", "cycles stalled on DRAM (CYCLE_ACTIVITY.STALLS_LDM_PENDING)")
	software := func(name string, config uint64, desc string) {
		mustRegister(EventDesc{Name: name, Kind: KindSoftware, Type: PerfTypeSoftware, Config: config, Desc: desc})
	}
	software(EventPageFaults, SWPageFaults, "page faults (kernel software event)")
	software(EventCtxSwitches, SWCtxSwitches, "context switches (kernel software event)")
	software(EventCPUMigrations, SWCPUMigrations, "CPU migrations (kernel software event)")
	return r
}

// ValidEventName reports whether name is usable as a registered event
// name: a metric-expression identifier ([A-Za-z_][A-Za-z0-9_]*), by
// convention upper-case.
func ValidEventName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r == '_', r >= 'A' && r <= 'Z', r >= 'a' && r <= 'z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Register adds a descriptor. The name must be a valid identifier and
// not already taken (neither by a default nor a previous registration).
func (r *Registry) Register(d EventDesc) error {
	if !ValidEventName(d.Name) {
		return fmt.Errorf("hpm: invalid event name %q (want an identifier like L1D_READ_MISS)", d.Name)
	}
	if _, ok := r.byName[d.Name]; ok {
		return fmt.Errorf("hpm: event %q already registered", d.Name)
	}
	r.byName[d.Name] = d
	r.order = append(r.order, d.Name)
	return nil
}

// Lookup returns the registered descriptor with the given name.
func (r *Registry) Lookup(name string) (EventDesc, bool) {
	d, ok := r.byName[name]
	return d, ok
}

// Len returns the number of registered events.
func (r *Registry) Len() int { return len(r.order) }

// Events returns every registered descriptor in registration order.
func (r *Registry) Events() []EventDesc {
	out := make([]EventDesc, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.byName[name])
	}
	return out
}

// Names returns the registered event names, sorted — the deterministic
// iteration order listings use.
func (r *Registry) Names() []string {
	out := append([]string(nil), r.order...)
	sort.Strings(out)
	return out
}

// ParseEvent resolves an event specification against the registry:
//
//   - a registered name ("CYCLES", or a user-defined event);
//   - "RAW:0x<hex>", a model-specific raw code taken from the vendor's
//     architecture manual (PERF_TYPE_RAW);
//   - a hardware-cache event "<CACHE>_<OP>_<RESULT>" with CACHE one of
//     L1D, L1I, LLC, DTLB, ITLB, BPU, NODE; OP one of READ, WRITE,
//     PREFETCH; RESULT one of ACCESS, MISS (PERF_TYPE_HW_CACHE) — e.g.
//     L1D_READ_MISS.
//
// Raw and hw-cache specs resolve without prior registration; their
// descriptor's name is the canonical spelling of the spec itself, so
// hw-cache names can appear directly in metric expressions.
func (r *Registry) ParseEvent(spec string) (EventDesc, error) {
	if d, ok := r.byName[spec]; ok {
		return d, nil
	}
	if cfg, ok := parseRawSpec(spec); ok {
		return EventDesc{
			Name:   fmt.Sprintf("RAW:0x%X", cfg),
			Kind:   KindRaw,
			Type:   PerfTypeRaw,
			Config: cfg,
			Desc:   "model-specific raw event code",
		}, nil
	}
	if d, ok := parseHWCacheSpec(spec); ok {
		return d, nil
	}
	return EventDesc{}, fmt.Errorf("hpm: unknown event %q", spec)
}

// ParseEvent resolves a spec against the default registry. Sessions
// with user-defined events resolve through their own Registry instead.
func ParseEvent(spec string) (EventDesc, error) {
	return defaultRegistry.ParseEvent(spec)
}

// defaultRegistry backs the package-level ParseEvent. It is never
// mutated; callers needing to register events take their own copy via
// DefaultRegistry().
var defaultRegistry = DefaultRegistry()

// parseRawSpec recognizes "RAW:0x1EF7" (the 0x is optional, the prefix
// case-insensitive).
func parseRawSpec(spec string) (uint64, bool) {
	rest, ok := cutPrefixFold(spec, "RAW:")
	if !ok {
		return 0, false
	}
	if h, ok2 := cutPrefixFold(rest, "0X"); ok2 {
		rest = h
	}
	if rest == "" {
		return 0, false
	}
	cfg, err := strconv.ParseUint(rest, 16, 64)
	if err != nil {
		return 0, false
	}
	return cfg, true
}

func cutPrefixFold(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && strings.EqualFold(s[:len(prefix)], prefix) {
		return s[len(prefix):], true
	}
	return s, false
}

// Hardware-cache event encoding (PERF_TYPE_HW_CACHE):
// config = cache-id | op<<8 | result<<16.
var (
	hwCacheIDs = map[string]uint64{
		"L1D": 0, "L1I": 1, "LLC": 2, "DTLB": 3, "ITLB": 4, "BPU": 5, "NODE": 6,
	}
	hwCacheOps     = map[string]uint64{"READ": 0, "WRITE": 1, "PREFETCH": 2}
	hwCacheResults = map[string]uint64{"ACCESS": 0, "MISS": 1}
)

// parseHWCacheSpec recognizes canonical hw-cache names such as
// L1D_READ_MISS or LLC_PREFETCH_ACCESS.
func parseHWCacheSpec(spec string) (EventDesc, bool) {
	parts := strings.Split(spec, "_")
	if len(parts) != 3 {
		return EventDesc{}, false
	}
	id, ok1 := hwCacheIDs[parts[0]]
	op, ok2 := hwCacheOps[parts[1]]
	res, ok3 := hwCacheResults[parts[2]]
	if !ok1 || !ok2 || !ok3 {
		return EventDesc{}, false
	}
	return EventDesc{
		Name:   spec,
		Kind:   KindHWCache,
		Type:   PerfTypeHWCache,
		Config: id | op<<8 | res<<16,
		Desc:   "hardware cache event",
	}, true
}
