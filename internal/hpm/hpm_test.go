package hpm

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultRegistryRoundTrip(t *testing.T) {
	reg := DefaultRegistry()
	if reg.Len() != 15 {
		t.Fatalf("default registry has %d events, want 15", reg.Len())
	}
	for _, d := range reg.Events() {
		got, err := reg.ParseEvent(d.Name)
		if err != nil {
			t.Fatalf("ParseEvent(%q): %v", d.Name, err)
		}
		if got != d {
			t.Fatalf("round trip %v -> %q -> %v", d, d.Name, got)
		}
		if !ValidEventName(d.Name) {
			t.Fatalf("default event name %q not a valid identifier", d.Name)
		}
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	names := DefaultRegistry().Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
}

func TestRegistryRegister(t *testing.T) {
	reg := DefaultRegistry()
	d := EventDesc{Name: "MY_RAW", Kind: KindRaw, Type: PerfTypeRaw, Config: 0x1234}
	if err := reg.Register(d); err != nil {
		t.Fatal(err)
	}
	got, ok := reg.Lookup("MY_RAW")
	if !ok || got != d {
		t.Fatalf("Lookup after Register = %v, %v", got, ok)
	}
	// Duplicates (including default names) are rejected.
	if err := reg.Register(d); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := reg.Register(EventDesc{Name: EventCycles, Kind: KindGeneric}); err == nil {
		t.Fatal("shadowing a default event accepted")
	}
	// Invalid identifiers are rejected.
	for _, bad := range []string{"", "1BAD", "BAD-NAME", "RAW:0x1", "A B"} {
		if err := reg.Register(EventDesc{Name: bad, Kind: KindRaw}); err == nil {
			t.Fatalf("invalid name %q accepted", bad)
		}
	}
	// The default registry behind package ParseEvent is unaffected.
	if _, err := ParseEvent("MY_RAW"); err == nil {
		t.Fatal("registration leaked into the shared default registry")
	}
}

func TestParseEventRawSpec(t *testing.T) {
	for _, spec := range []string{"RAW:0x1EF7", "raw:0x1ef7", "RAW:1EF7"} {
		d, err := ParseEvent(spec)
		if err != nil {
			t.Fatalf("ParseEvent(%q): %v", spec, err)
		}
		if d.Kind != KindRaw || d.Type != PerfTypeRaw || d.Config != 0x1EF7 {
			t.Fatalf("ParseEvent(%q) = %+v", spec, d)
		}
		if d.Name != "RAW:0x1EF7" {
			t.Fatalf("canonical raw name = %q", d.Name)
		}
	}
	for _, bad := range []string{"RAW:", "RAW:0x", "RAW:zz", "RAW:0x1 "} {
		if _, err := ParseEvent(bad); err == nil {
			t.Fatalf("bad raw spec %q accepted", bad)
		}
	}
}

func TestParseEventHWCacheSpec(t *testing.T) {
	cases := map[string]uint64{
		"L1D_READ_ACCESS":     0,
		"L1D_READ_MISS":       0 | 1<<16,
		"L1D_WRITE_ACCESS":    0 | 1<<8,
		"LLC_READ_MISS":       2 | 1<<16,
		"LLC_PREFETCH_ACCESS": 2 | 2<<8,
		"ITLB_READ_MISS":      4 | 1<<16,
		"BPU_READ_ACCESS":     5,
	}
	for spec, config := range cases {
		d, err := ParseEvent(spec)
		if err != nil {
			t.Fatalf("ParseEvent(%q): %v", spec, err)
		}
		if d.Kind != KindHWCache || d.Type != PerfTypeHWCache || d.Config != config {
			t.Fatalf("ParseEvent(%q) = %+v, want config %#x", spec, d, config)
		}
		if d.Name != spec {
			t.Fatalf("hw-cache name %q != spec %q", d.Name, spec)
		}
	}
	for _, bad := range []string{"L1D_READ", "L1D_READ_MISS_X", "L9_READ_MISS", "L1D_EAT_MISS", "L1D_READ_WIN"} {
		if _, err := ParseEvent(bad); err == nil {
			t.Fatalf("bad hw-cache spec %q accepted", bad)
		}
	}
}

func TestParseEventUnknown(t *testing.T) {
	if _, err := ParseEvent("NOT_AN_EVENT"); err == nil {
		t.Fatal("expected error for unknown event name")
	}
}

func TestGenericClassification(t *testing.T) {
	reg := DefaultRegistry()
	generic := []string{EventCycles, EventInstructions, EventCacheReferences,
		EventCacheMisses, EventBranches, EventBranchMisses}
	for _, name := range generic {
		d, _ := reg.Lookup(name)
		if !d.Generic() {
			t.Errorf("%v should be generic", d)
		}
	}
	specific := []string{EventFPAssist, EventL2Misses, EventLoads, EventStores, EventFPOps}
	for _, name := range specific {
		d, _ := reg.Lookup(name)
		if d.Generic() {
			t.Errorf("%v should not be generic", d)
		}
		if d.Kind != KindRaw {
			t.Errorf("%v should be a raw event, got %v", d, d.Kind)
		}
	}
}

func TestEventKindString(t *testing.T) {
	if KindGeneric.String() != "generic" || KindHWCache.String() != "hw-cache" || KindRaw.String() != "raw" || KindSoftware.String() != "software" {
		t.Fatal("kind names drifted")
	}
}

func TestSoftwareEventsRegistered(t *testing.T) {
	r := DefaultRegistry()
	for name, config := range map[string]uint64{
		EventPageFaults:    SWPageFaults,
		EventCtxSwitches:   SWCtxSwitches,
		EventCPUMigrations: SWCPUMigrations,
	} {
		d, ok := r.Lookup(name)
		if !ok {
			t.Fatalf("software event %s missing from DefaultRegistry", name)
		}
		if d.Kind != KindSoftware || d.Type != PerfTypeSoftware || d.Config != config {
			t.Fatalf("%s = %+v, want software type=%d config=%d", name, d, PerfTypeSoftware, config)
		}
	}
}

func TestTaskID(t *testing.T) {
	p := TaskID{PID: 10, TID: 10}
	if !p.IsProcess() {
		t.Fatal("leader must be a process")
	}
	th := TaskID{PID: 10, TID: 11}
	if th.IsProcess() {
		t.Fatal("thread must not be a process")
	}
	if p.String() == "" || th.String() == "" || p.String() == th.String() {
		t.Fatalf("String: %q vs %q", p, th)
	}
}

func TestGroupScope(t *testing.T) {
	leader := TaskID{PID: 10, TID: 10}
	g := leader.Group()
	if !g.IsGroup() || g.PID != 10 || g.TID != 0 {
		t.Fatalf("Group() = %+v", g)
	}
	if leader.IsGroup() {
		t.Fatal("a leader is not group scope")
	}
	if g.IsProcess() {
		t.Fatal("group scope is not a concrete leader task")
	}
	if !strings.Contains(g.String(), "group") {
		t.Fatalf("group String = %q", g)
	}
}

func TestCountScaled(t *testing.T) {
	// Counter ran whenever enabled: no scaling.
	c := Count{Raw: 1000, Enabled: 50, Running: 50}
	if c.Scaled() != 1000 || !c.Exact() {
		t.Fatalf("exact count scaled to %d", c.Scaled())
	}
	// Counter ran half the time: value doubles.
	c = Count{Raw: 1000, Enabled: 100, Running: 50}
	if got := c.Scaled(); got != 2000 {
		t.Fatalf("multiplexed count = %d, want 2000", got)
	}
	if c.Exact() {
		t.Fatal("multiplexed count must not be exact")
	}
	// Never ran: zero, not division by zero.
	c = Count{Raw: 1000, Enabled: 100, Running: 0}
	if got := c.Scaled(); got != 0 {
		t.Fatalf("never-ran count = %d, want 0", got)
	}
}

// Regression: an event that was enabled but never scheduled onto a
// counter (Running==0, Enabled>0 — e.g. its rotation group never got a
// turn) must report 0, not the raw value, and must not claim exactness.
func TestCountNeverScheduled(t *testing.T) {
	c := Count{Raw: 7777, Enabled: 1_000_000, Running: 0}
	if got := c.Scaled(); got != 0 {
		t.Fatalf("never-scheduled Scaled() = %d, want 0", got)
	}
	if c.Exact() {
		t.Fatal("never-scheduled count claims Exact()")
	}
	// The degenerate zero count (never enabled at all) stays exact: no
	// multiplexing happened, there is simply nothing to report.
	z := Count{}
	if !z.Exact() || z.Scaled() != 0 {
		t.Fatalf("zero count: Scaled=%d Exact=%v", z.Scaled(), z.Exact())
	}
}

func TestCPUScope(t *testing.T) {
	for _, n := range []int{0, 1, 7} {
		id := CPUTask(n)
		if !id.IsCPU() || id.CPU() != n {
			t.Fatalf("CPUTask(%d) = %+v (IsCPU=%v CPU=%d)", n, id, id.IsCPU(), id.CPU())
		}
		if id.IsGroup() {
			t.Fatalf("CPU scope %v must not be group scope", id)
		}
		if !strings.Contains(id.String(), "cpu") {
			t.Fatalf("CPU scope String = %q", id)
		}
	}
	// Distinct CPUs map to distinct PIDs so PID-keyed layers (history,
	// store, wire) keep them apart.
	if CPUTask(0) == CPUTask(1) {
		t.Fatal("CPU scopes collide")
	}
	if (TaskID{PID: 10, TID: 10}).IsCPU() {
		t.Fatal("ordinary task claims CPU scope")
	}
}

func TestDeltas(t *testing.T) {
	prev := []Count{{Raw: 100, Enabled: 1, Running: 1}, {Raw: 50, Enabled: 1, Running: 1}}
	cur := []Count{{Raw: 180, Enabled: 2, Running: 2}, {Raw: 40, Enabled: 2, Running: 2}}
	d := Deltas(prev, cur)
	if d[0] != 80 {
		t.Fatalf("delta[0] = %d, want 80", d[0])
	}
	// Regressing counter clamps to zero.
	if d[1] != 0 {
		t.Fatalf("delta[1] = %d, want 0 (clamped)", d[1])
	}
}

func TestDeltasInto(t *testing.T) {
	prev := []Count{{Raw: 100, Enabled: 1, Running: 1}, {Raw: 50, Enabled: 1, Running: 1}}
	cur := []Count{{Raw: 180, Enabled: 2, Running: 2}, {Raw: 40, Enabled: 2, Running: 2}}
	// A stale, oversized destination is truncated and fully overwritten.
	dst := []uint64{9, 9, 9, 9}
	out := DeltasInto(dst, prev, cur)
	if len(out) != 2 || out[0] != 80 || out[1] != 0 {
		t.Fatalf("deltas = %v", out)
	}
	if &out[0] != &dst[0] {
		t.Fatal("destination with sufficient capacity must be reused")
	}
	// An undersized destination grows.
	out = DeltasInto(make([]uint64, 0), prev, cur)
	if len(out) != 2 || out[0] != 80 || out[1] != 0 {
		t.Fatalf("deltas = %v", out)
	}
}

func TestDeltasLengthMismatch(t *testing.T) {
	// New events appended since last read: their full value is the delta.
	prev := []Count{{Raw: 10, Enabled: 1, Running: 1}}
	cur := []Count{{Raw: 15, Enabled: 1, Running: 1}, {Raw: 7, Enabled: 1, Running: 1}}
	d := Deltas(prev, cur)
	if len(d) != 2 || d[0] != 5 || d[1] != 7 {
		t.Fatalf("deltas = %v", d)
	}
}

// Property: deltas are never negative (they are uint64 but must also never
// be produced by wrap-around) and monotone counters give exact diffs.
func TestPropDeltasMonotone(t *testing.T) {
	f := func(a, b uint64) bool {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		prev := []Count{{Raw: lo, Enabled: 1, Running: 1}}
		cur := []Count{{Raw: hi, Enabled: 1, Running: 1}}
		d := Deltas(prev, cur)
		return d[0] == hi-lo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling never shrinks a count (Enabled >= Running by
// construction) and is the identity when exact.
func TestPropScaledMonotone(t *testing.T) {
	f := func(raw uint64, running, extra uint32) bool {
		run := uint64(running)
		en := run + uint64(extra)
		c := Count{Raw: raw % (1 << 40), Enabled: en, Running: run}
		s := c.Scaled()
		if run == 0 {
			return s == 0
		}
		return s >= c.Raw
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
