package hpm

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEventStringRoundTrip(t *testing.T) {
	for _, e := range AllEvents() {
		name := e.String()
		got, err := ParseEvent(name)
		if err != nil {
			t.Fatalf("ParseEvent(%q): %v", name, err)
		}
		if got != e {
			t.Fatalf("round trip %v -> %q -> %v", e, name, got)
		}
	}
}

func TestEventValidity(t *testing.T) {
	if EventInvalid.Valid() {
		t.Fatal("EventInvalid must not be valid")
	}
	if !EventCycles.Valid() || !EventFPOps.Valid() {
		t.Fatal("known events must be valid")
	}
	if EventID(999).Valid() {
		t.Fatal("out-of-range event must not be valid")
	}
	if got := EventID(999).String(); got != "EVENT(999)" {
		t.Fatalf("String of unknown = %q", got)
	}
}

func TestParseEventUnknown(t *testing.T) {
	if _, err := ParseEvent("NOT_AN_EVENT"); err == nil {
		t.Fatal("expected error for unknown event name")
	}
}

func TestGenericClassification(t *testing.T) {
	generic := []EventID{EventCycles, EventInstructions, EventCacheReferences,
		EventCacheMisses, EventBranches, EventBranchMisses}
	for _, e := range generic {
		if !e.Generic() {
			t.Errorf("%v should be generic", e)
		}
	}
	specific := []EventID{EventFPAssist, EventL2Misses, EventLoads, EventStores, EventFPOps}
	for _, e := range specific {
		if e.Generic() {
			t.Errorf("%v should not be generic", e)
		}
	}
}

func TestTaskID(t *testing.T) {
	p := TaskID{PID: 10, TID: 10}
	if !p.IsProcess() {
		t.Fatal("leader must be a process")
	}
	th := TaskID{PID: 10, TID: 11}
	if th.IsProcess() {
		t.Fatal("thread must not be a process")
	}
	if p.String() == "" || th.String() == "" || p.String() == th.String() {
		t.Fatalf("String: %q vs %q", p, th)
	}
}

func TestGroupScope(t *testing.T) {
	leader := TaskID{PID: 10, TID: 10}
	g := leader.Group()
	if !g.IsGroup() || g.PID != 10 || g.TID != 0 {
		t.Fatalf("Group() = %+v", g)
	}
	if leader.IsGroup() {
		t.Fatal("a leader is not group scope")
	}
	if g.IsProcess() {
		t.Fatal("group scope is not a concrete leader task")
	}
	if !strings.Contains(g.String(), "group") {
		t.Fatalf("group String = %q", g)
	}
}

func TestCountScaled(t *testing.T) {
	// Counter ran whenever enabled: no scaling.
	c := Count{Raw: 1000, Enabled: 50, Running: 50}
	if c.Scaled() != 1000 || !c.Exact() {
		t.Fatalf("exact count scaled to %d", c.Scaled())
	}
	// Counter ran half the time: value doubles.
	c = Count{Raw: 1000, Enabled: 100, Running: 50}
	if got := c.Scaled(); got != 2000 {
		t.Fatalf("multiplexed count = %d, want 2000", got)
	}
	if c.Exact() {
		t.Fatal("multiplexed count must not be exact")
	}
	// Never ran: zero, not division by zero.
	c = Count{Raw: 1000, Enabled: 100, Running: 0}
	if got := c.Scaled(); got != 0 {
		t.Fatalf("never-ran count = %d, want 0", got)
	}
}

func TestDeltas(t *testing.T) {
	prev := []Count{{Raw: 100, Enabled: 1, Running: 1}, {Raw: 50, Enabled: 1, Running: 1}}
	cur := []Count{{Raw: 180, Enabled: 2, Running: 2}, {Raw: 40, Enabled: 2, Running: 2}}
	d := Deltas(prev, cur)
	if d[0] != 80 {
		t.Fatalf("delta[0] = %d, want 80", d[0])
	}
	// Regressing counter clamps to zero.
	if d[1] != 0 {
		t.Fatalf("delta[1] = %d, want 0 (clamped)", d[1])
	}
}

func TestDeltasInto(t *testing.T) {
	prev := []Count{{Raw: 100, Enabled: 1, Running: 1}, {Raw: 50, Enabled: 1, Running: 1}}
	cur := []Count{{Raw: 180, Enabled: 2, Running: 2}, {Raw: 40, Enabled: 2, Running: 2}}
	// A stale, oversized destination is truncated and fully overwritten.
	dst := []uint64{9, 9, 9, 9}
	out := DeltasInto(dst, prev, cur)
	if len(out) != 2 || out[0] != 80 || out[1] != 0 {
		t.Fatalf("deltas = %v", out)
	}
	if &out[0] != &dst[0] {
		t.Fatal("destination with sufficient capacity must be reused")
	}
	// An undersized destination grows.
	out = DeltasInto(make([]uint64, 0), prev, cur)
	if len(out) != 2 || out[0] != 80 || out[1] != 0 {
		t.Fatalf("deltas = %v", out)
	}
}

func TestDeltasLengthMismatch(t *testing.T) {
	// New events appended since last read: their full value is the delta.
	prev := []Count{{Raw: 10, Enabled: 1, Running: 1}}
	cur := []Count{{Raw: 15, Enabled: 1, Running: 1}, {Raw: 7, Enabled: 1, Running: 1}}
	d := Deltas(prev, cur)
	if len(d) != 2 || d[0] != 5 || d[1] != 7 {
		t.Fatalf("deltas = %v", d)
	}
}

// Property: deltas are never negative (they are uint64 but must also never
// be produced by wrap-around) and monotone counters give exact diffs.
func TestPropDeltasMonotone(t *testing.T) {
	f := func(a, b uint64) bool {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		prev := []Count{{Raw: lo, Enabled: 1, Running: 1}}
		cur := []Count{{Raw: hi, Enabled: 1, Running: 1}}
		d := Deltas(prev, cur)
		return d[0] == hi-lo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling never shrinks a count (Enabled >= Running by
// construction) and is the identity when exact.
func TestPropScaledMonotone(t *testing.T) {
	f := func(raw uint64, running, extra uint32) bool {
		run := uint64(running)
		en := run + uint64(extra)
		c := Count{Raw: raw % (1 << 40), Enabled: en, Running: run}
		s := c.Scaled()
		if run == 0 {
			return s == 0
		}
		return s >= c.Raw
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
