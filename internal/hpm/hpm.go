// Package hpm defines the hardware-performance-monitoring abstraction that
// the tiptop engine is written against. Two backends implement it:
//
//   - internal/perfevent wraps the Linux perf_event_open(2) system call and
//     counts events on real hardware (paper §2.3);
//   - internal/sim/pmu exposes the simulated machine's virtual PMU, used to
//     regenerate the paper's experiments deterministically.
//
// The interface mirrors the perf_event semantics the paper relies on: a
// counter is attached to an already-running task at an arbitrary point in
// time, counts only events that occur after the attach, survives context
// switches, and is read periodically by the monitoring process.
package hpm

import (
	"errors"
	"fmt"
)

// Errors shared by backends.
var (
	// ErrUnsupportedEvent is returned when the backend (or underlying
	// hardware) cannot count the requested event.
	ErrUnsupportedEvent = errors.New("hpm: unsupported event")
	// ErrNoSuchTask is returned when attaching to a task that does not
	// exist (any more).
	ErrNoSuchTask = errors.New("hpm: no such task")
	// ErrPermission is returned when the backend exists but the caller
	// may not monitor the target task (paper footnote 1: non-privileged
	// users can only watch processes they own).
	ErrPermission = errors.New("hpm: permission denied")
	// ErrUnavailable is returned by Probe when the backend cannot work
	// at all in this environment (e.g. perf_event_open masked by a
	// container seccomp policy).
	ErrUnavailable = errors.New("hpm: backend unavailable")
)

// TaskID identifies a monitorable entity: a single kernel task (thread),
// or — with TID zero — a whole thread group. The paper's tool can count
// per thread or per process (§2.2 "Events can be counted per thread, or
// per process"); the group scope corresponds to perf_event's inherit
// counting.
type TaskID struct {
	PID int // process (thread group) id
	TID int // thread id; equal to PID for the main thread, 0 for group scope
}

// CPUTask returns the ID addressing system-wide counting on one logical
// CPU (perf_event's pid=-1, cpu=N scope). CPU scopes are encoded as
// negative PIDs so they flow through every PID-keyed layer above the
// backend — history series, the durable store, the wire format, the
// query engine — without any of them learning a new key type.
func CPUTask(cpu int) TaskID { return TaskID{PID: -(cpu + 1), TID: -(cpu + 1)} }

// IsCPU reports whether the ID addresses a logical CPU rather than a
// task (system-wide counting scope).
func (t TaskID) IsCPU() bool { return t.PID < 0 }

// CPU returns the logical CPU index of a CPU-scope ID.
func (t TaskID) CPU() int { return -t.PID - 1 }

// IsProcess reports whether the task is a thread-group leader.
func (t TaskID) IsProcess() bool { return t.PID == t.TID }

// IsGroup reports whether the ID addresses the whole thread group
// (process-scope counting) rather than one task.
func (t TaskID) IsGroup() bool { return t.TID == 0 }

// Group returns the group-scope ID for the same process.
func (t TaskID) Group() TaskID { return TaskID{PID: t.PID} }

func (t TaskID) String() string {
	if t.IsCPU() {
		return fmt.Sprintf("cpu %d (system-wide)", t.CPU())
	}
	if t.IsGroup() {
		return fmt.Sprintf("pid %d (group)", t.PID)
	}
	if t.IsProcess() {
		return fmt.Sprintf("pid %d", t.PID)
	}
	return fmt.Sprintf("pid %d/tid %d", t.PID, t.TID)
}

// Count is one counter reading. Enabled and Running carry the
// time-multiplexing information perf_event exposes via
// PERF_FORMAT_TOTAL_TIME_{ENABLED,RUNNING}: when the PMU has fewer
// hardware counters than requested events the kernel time-slices them and
// the raw value must be scaled by Enabled/Running.
type Count struct {
	Raw     uint64 // raw counter value since attach
	Enabled uint64 // ns the event was enabled
	Running uint64 // ns the event was actually counting
}

// Scaled returns the multiplex-corrected estimate of the count. When the
// event ran whenever it was enabled the raw value is returned unchanged.
func (c Count) Scaled() uint64 {
	if c.Running == 0 {
		return 0
	}
	if c.Running >= c.Enabled {
		return c.Raw
	}
	return uint64(float64(c.Raw) * float64(c.Enabled) / float64(c.Running))
}

// Exact reports whether the count needed no multiplex scaling.
func (c Count) Exact() bool { return c.Running >= c.Enabled }

// TaskCounter is a set of counters attached to one task. It is the
// file-descriptor analogue: Close must be called to release it.
//
// Read may be called concurrently with Read on *other* TaskCounters of
// the same backend (the sharded engine samples distinct tasks from
// distinct goroutines); calls on one TaskCounter are never concurrent
// with each other or with its Close.
type TaskCounter interface {
	// Task returns the task the counters are attached to.
	Task() TaskID
	// Read returns the current value of every attached event, in the
	// order the events were given at attach time.
	Read() ([]Count, error)
	// Close detaches and releases the counters.
	Close() error
}

// CountReader is an optional TaskCounter extension for allocation-free
// sampling: ReadInto writes the current counts into dst (grown as
// needed) and returns the filled slice. The engine double-buffers the
// destination, so a steady-state refresh performs no per-read
// allocation. The concurrency contract matches TaskCounter.Read.
type CountReader interface {
	ReadInto(dst []Count) ([]Count, error)
}

// Backend creates counters. Attach and TaskCounter.Close are always
// serialized by the engine (one call at a time per backend), so
// implementations need not support two of either running concurrently.
// They MUST however tolerate TaskCounter.Read on distinct counters
// running concurrently — with each other and with an in-flight Attach
// or Close on a *different* task — because the sharded engine samples
// known tasks while admitting new ones. In practice: Attach/Close may
// not mutate state that Read on other counters consults without
// synchronizing it.
type Backend interface {
	// Name returns a short human-readable backend name ("perf_event",
	// "sim").
	Name() string
	// Probe reports whether the backend can be used at all, returning
	// ErrUnavailable (possibly wrapped) when it cannot.
	Probe() error
	// Supported reports whether the backend can count the described
	// event. Support is negotiated per descriptor: generic events are
	// portable, raw and hw-cache encodings depend on the backend and
	// the machine model behind it.
	Supported(e EventDesc) bool
	// Attach opens counters for the events on the given task. Counting
	// starts at the time of the call: events that happened before are
	// not observed (paper §2.2).
	Attach(task TaskID, events []EventDesc) (TaskCounter, error)
	// Capacity returns how many hardware counter slots one attach can
	// occupy before events must be time-multiplexed: the number of PMU
	// counting registers (e.g. 4 on a Cortex-A7). Zero means unlimited
	// or unknown — the caller attaches everything at once and relies on
	// Enabled/Running for any kernel-side multiplexing.
	Capacity() int
	// SlotCost returns how many counter slots the event occupies: 1 for
	// an ordinary hardware event, 0 for events counted outside the PMU
	// (software events, fixed counters), which never need multiplexing.
	SlotCost(e EventDesc) int
}

// Deltas computes per-event deltas between two readings taken from the
// same TaskCounter. Each delta is the interval's raw increment scaled by
// the interval's own Enabled/Running ratio — the multiplex correction is
// applied to the refresh window itself, not by differencing cumulative
// Scaled() estimates. Differencing cumulative estimates is subtly wrong
// under counter rotation: the cumulative Enabled/Running ratio
// oscillates with the rotation phase, so the estimate of the *total* can
// legitimately revise downward between reads, and clamping those
// revisions to zero rectifies the oscillation into counts that never
// happened. Interval scaling has no such phase: a window in which the
// event counted the whole time contributes its raw increment exactly,
// and a window in which it counted part of the time is extrapolated by
// that window's coverage alone. A negative delta (counter re-created,
// task died and pid reused) is clamped to zero: the tool displays
// occurrences since the previous refresh and must never show garbage.
func Deltas(prev, cur []Count) []uint64 {
	return DeltasInto(nil, prev, cur)
}

// DeltasInto is Deltas writing into dst, which is grown as needed and
// returned. The sampling engine calls it once per task per refresh; the
// reusable destination keeps the per-tick garbage independent of the
// number of monitored tasks.
func DeltasInto(dst []uint64, prev, cur []Count) []uint64 {
	if cap(dst) < len(cur) {
		dst = make([]uint64, len(cur))
	}
	dst = dst[:len(cur)]
	n := len(cur)
	if len(prev) < n {
		n = len(prev)
	}
	for i := 0; i < n; i++ {
		dst[i] = intervalDelta(prev[i], cur[i])
	}
	for i := n; i < len(cur); i++ {
		// Event appended since the previous read: its whole reading is
		// the interval.
		dst[i] = intervalDelta(Count{}, cur[i])
	}
	return dst
}

// intervalDelta extrapolates one event's increment over a read interval
// by the interval's own coverage.
func intervalDelta(p, c Count) uint64 {
	if c.Raw < p.Raw {
		return 0
	}
	dRaw := c.Raw - p.Raw
	var dEn, dRun uint64
	if c.Enabled > p.Enabled {
		dEn = c.Enabled - p.Enabled
	}
	if c.Running > p.Running {
		dRun = c.Running - p.Running
	}
	if dRun == 0 {
		if dEn > 0 {
			// Enabled but never scheduled onto a counter: nothing was
			// counted and there is no coverage to extrapolate from.
			return 0
		}
		// Backend without scheduling-time tracking: trust the raw
		// increment.
		return dRaw
	}
	if dRun >= dEn {
		return dRaw
	}
	return uint64(float64(dRaw) * float64(dEn) / float64(dRun))
}
