// Package hpm defines the hardware-performance-monitoring abstraction that
// the tiptop engine is written against. Two backends implement it:
//
//   - internal/perfevent wraps the Linux perf_event_open(2) system call and
//     counts events on real hardware (paper §2.3);
//   - internal/sim/pmu exposes the simulated machine's virtual PMU, used to
//     regenerate the paper's experiments deterministically.
//
// The interface mirrors the perf_event semantics the paper relies on: a
// counter is attached to an already-running task at an arbitrary point in
// time, counts only events that occur after the attach, survives context
// switches, and is read periodically by the monitoring process.
package hpm

import (
	"errors"
	"fmt"
)

// EventID identifies a generic, architecture-independent countable event.
// The set corresponds to the "generic events" exposed by
// linux/perf_event.h that the paper's default configuration uses, plus the
// architecture-specific events needed by the use cases (FP assists for
// §3.1, L2 misses for §3.4, load/store/FP-op counts for the §2.6 metrics).
type EventID int

// Generic events. Cycles and Instructions are the two counters behind IPC,
// the paper's headline metric.
const (
	EventInvalid EventID = iota
	EventCycles
	EventInstructions
	EventCacheReferences // last-level cache references
	EventCacheMisses     // last-level cache misses
	EventBranches
	EventBranchMisses
	// Architecture-specific events (paper §2.2: "the tool is very
	// flexible and lets users monitor any target-specific event").
	EventFPAssist // micro-code assisted FP operations (Intel specific)
	EventL2Misses
	EventLoads
	EventStores
	EventFPOps
	// EventMemStallCycles counts cycles stalled on memory (LLC-miss
	// latency). The paper's §3.4 names memory-access-latency counters
	// as future work for detecting DRAM-level contention; this event
	// implements that extension.
	EventMemStallCycles
	eventMax
)

var eventNames = [...]string{
	EventInvalid:         "INVALID",
	EventCycles:          "CYCLES",
	EventInstructions:    "INSTRUCTIONS",
	EventCacheReferences: "CACHE_REFERENCES",
	EventCacheMisses:     "CACHE_MISSES",
	EventBranches:        "BRANCHES",
	EventBranchMisses:    "BRANCH_MISSES",
	EventFPAssist:        "FP_ASSIST",
	EventL2Misses:        "L2_MISSES",
	EventLoads:           "LOADS",
	EventStores:          "STORES",
	EventFPOps:           "FP_OPS",
	EventMemStallCycles:  "MEM_STALL_CYCLES",
}

// String returns the canonical upper-case event name used in metric
// expressions and configuration files.
func (e EventID) String() string {
	if e <= EventInvalid || int(e) >= len(eventNames) {
		return fmt.Sprintf("EVENT(%d)", int(e))
	}
	return eventNames[e]
}

// Valid reports whether e names a known event.
func (e EventID) Valid() bool { return e > EventInvalid && e < eventMax }

// AllEvents returns every valid event ID in declaration order.
func AllEvents() []EventID {
	out := make([]EventID, 0, int(eventMax)-1)
	for e := EventCycles; e < eventMax; e++ {
		out = append(out, e)
	}
	return out
}

// ParseEvent resolves a canonical event name (as produced by String) back
// to its ID.
func ParseEvent(name string) (EventID, error) {
	for e := EventCycles; e < eventMax; e++ {
		if eventNames[e] == name {
			return e, nil
		}
	}
	return EventInvalid, fmt.Errorf("hpm: unknown event %q", name)
}

// Generic reports whether the event is one of the portable generic events
// every backend must support. Backends may reject non-generic events with
// ErrUnsupportedEvent.
func (e EventID) Generic() bool {
	switch e {
	case EventCycles, EventInstructions, EventCacheReferences,
		EventCacheMisses, EventBranches, EventBranchMisses:
		return true
	}
	return false
}

// Errors shared by backends.
var (
	// ErrUnsupportedEvent is returned when the backend (or underlying
	// hardware) cannot count the requested event.
	ErrUnsupportedEvent = errors.New("hpm: unsupported event")
	// ErrNoSuchTask is returned when attaching to a task that does not
	// exist (any more).
	ErrNoSuchTask = errors.New("hpm: no such task")
	// ErrPermission is returned when the backend exists but the caller
	// may not monitor the target task (paper footnote 1: non-privileged
	// users can only watch processes they own).
	ErrPermission = errors.New("hpm: permission denied")
	// ErrUnavailable is returned by Probe when the backend cannot work
	// at all in this environment (e.g. perf_event_open masked by a
	// container seccomp policy).
	ErrUnavailable = errors.New("hpm: backend unavailable")
)

// TaskID identifies a monitorable entity: a single kernel task (thread),
// or — with TID zero — a whole thread group. The paper's tool can count
// per thread or per process (§2.2 "Events can be counted per thread, or
// per process"); the group scope corresponds to perf_event's inherit
// counting.
type TaskID struct {
	PID int // process (thread group) id
	TID int // thread id; equal to PID for the main thread, 0 for group scope
}

// IsProcess reports whether the task is a thread-group leader.
func (t TaskID) IsProcess() bool { return t.PID == t.TID }

// IsGroup reports whether the ID addresses the whole thread group
// (process-scope counting) rather than one task.
func (t TaskID) IsGroup() bool { return t.TID == 0 }

// Group returns the group-scope ID for the same process.
func (t TaskID) Group() TaskID { return TaskID{PID: t.PID} }

func (t TaskID) String() string {
	if t.IsGroup() {
		return fmt.Sprintf("pid %d (group)", t.PID)
	}
	if t.IsProcess() {
		return fmt.Sprintf("pid %d", t.PID)
	}
	return fmt.Sprintf("pid %d/tid %d", t.PID, t.TID)
}

// Count is one counter reading. Enabled and Running carry the
// time-multiplexing information perf_event exposes via
// PERF_FORMAT_TOTAL_TIME_{ENABLED,RUNNING}: when the PMU has fewer
// hardware counters than requested events the kernel time-slices them and
// the raw value must be scaled by Enabled/Running.
type Count struct {
	Raw     uint64 // raw counter value since attach
	Enabled uint64 // ns the event was enabled
	Running uint64 // ns the event was actually counting
}

// Scaled returns the multiplex-corrected estimate of the count. When the
// event ran whenever it was enabled the raw value is returned unchanged.
func (c Count) Scaled() uint64 {
	if c.Running == 0 {
		return 0
	}
	if c.Running >= c.Enabled {
		return c.Raw
	}
	return uint64(float64(c.Raw) * float64(c.Enabled) / float64(c.Running))
}

// Exact reports whether the count needed no multiplex scaling.
func (c Count) Exact() bool { return c.Running >= c.Enabled }

// TaskCounter is a set of counters attached to one task. It is the
// file-descriptor analogue: Close must be called to release it.
//
// Read may be called concurrently with Read on *other* TaskCounters of
// the same backend (the sharded engine samples distinct tasks from
// distinct goroutines); calls on one TaskCounter are never concurrent
// with each other or with its Close.
type TaskCounter interface {
	// Task returns the task the counters are attached to.
	Task() TaskID
	// Read returns the current value of every attached event, in the
	// order the events were given at attach time.
	Read() ([]Count, error)
	// Close detaches and releases the counters.
	Close() error
}

// CountReader is an optional TaskCounter extension for allocation-free
// sampling: ReadInto writes the current counts into dst (grown as
// needed) and returns the filled slice. The engine double-buffers the
// destination, so a steady-state refresh performs no per-read
// allocation. The concurrency contract matches TaskCounter.Read.
type CountReader interface {
	ReadInto(dst []Count) ([]Count, error)
}

// Backend creates counters. Attach and TaskCounter.Close are always
// serialized by the engine (one call at a time per backend), so
// implementations need not support two of either running concurrently.
// They MUST however tolerate TaskCounter.Read on distinct counters
// running concurrently — with each other and with an in-flight Attach
// or Close on a *different* task — because the sharded engine samples
// known tasks while admitting new ones. In practice: Attach/Close may
// not mutate state that Read on other counters consults without
// synchronizing it.
type Backend interface {
	// Name returns a short human-readable backend name ("perf_event",
	// "sim").
	Name() string
	// Probe reports whether the backend can be used at all, returning
	// ErrUnavailable (possibly wrapped) when it cannot.
	Probe() error
	// Supported reports whether the backend can count the given event.
	Supported(e EventID) bool
	// Attach opens counters for the events on the given task. Counting
	// starts at the time of the call: events that happened before are
	// not observed (paper §2.2).
	Attach(task TaskID, events []EventID) (TaskCounter, error)
}

// Deltas computes per-event deltas between two readings taken from the
// same TaskCounter, applying multiplex scaling to both endpoints. A
// negative delta (counter re-created, task died and pid reused) is clamped
// to zero: the tool displays occurrences since the previous refresh and
// must never show garbage.
func Deltas(prev, cur []Count) []uint64 {
	return DeltasInto(nil, prev, cur)
}

// DeltasInto is Deltas writing into dst, which is grown as needed and
// returned. The sampling engine calls it once per task per refresh; the
// reusable destination keeps the per-tick garbage independent of the
// number of monitored tasks.
func DeltasInto(dst []uint64, prev, cur []Count) []uint64 {
	if cap(dst) < len(cur) {
		dst = make([]uint64, len(cur))
	}
	dst = dst[:len(cur)]
	n := len(cur)
	if len(prev) < n {
		n = len(prev)
	}
	for i := 0; i < n; i++ {
		p, c := prev[i].Scaled(), cur[i].Scaled()
		if c > p {
			dst[i] = c - p
		} else {
			dst[i] = 0
		}
	}
	for i := n; i < len(cur); i++ {
		dst[i] = cur[i].Scaled()
	}
	return dst
}
