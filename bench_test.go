package tiptop

// The benchmark harness: one benchmark per table and figure of the
// paper, each regenerating the experiment end-to-end through the same
// drivers cmd/tipbench uses, plus micro-benchmarks of the substrate hot
// paths (cache simulation, timing model, VM interpretation, counter
// reads, expression evaluation). Headline reproduction numbers are
// attached to the benchmark output via ReportMetric, so
// `go test -bench=. -benchmem` doubles as a results table.

import (
	"testing"
	"time"

	"tiptop/internal/experiments"
	"tiptop/internal/hpm"
	"tiptop/internal/metrics"
	"tiptop/internal/sim/cache"
	"tiptop/internal/sim/cpu"
	"tiptop/internal/sim/machine"
	"tiptop/internal/sim/pmu"
	"tiptop/internal/sim/sched"
	"tiptop/internal/sim/workload"
	"tiptop/internal/ukernel"
)

// benchConfig keeps the per-iteration cost of figure benchmarks modest.
func benchConfig() experiments.Config {
	return experiments.Config{Scale: 0.01, Seed: 1}
}

// runExperiment drives one registered experiment per b.N iteration and
// reports the requested headline metrics from the last run.
func runExperiment(b *testing.B, id string, report map[string]string) {
	b.Helper()
	e, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var last *experiments.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	for metric, unit := range report {
		if v, ok := last.Metrics[metric]; ok {
			b.ReportMetric(v, unit)
		}
	}
}

// --- one benchmark per paper table/figure ---

func BenchmarkFig1Snapshot(b *testing.B) {
	runExperiment(b, "fig1", map[string]string{
		"ipc_process1":  "IPC(p1)",
		"cpu_process11": "%CPU(p11)",
	})
}

func BenchmarkTable1FPMicro(b *testing.B) {
	runExperiment(b, "tab1", map[string]string{
		"x87_slowdown":   "x87-slowdown-x",
		"ipc_x87/finite": "IPC-finite",
		"assist_x87/NaN": "%assist-NaN",
	})
}

func BenchmarkFig3REvolution(b *testing.B) {
	runExperiment(b, "fig3", map[string]string{
		"speedup_total":  "total-speedup-x",
		"speedup_faulty": "faulty-speedup-x",
		"ipc_after":      "IPC-floor",
	})
}

func BenchmarkFig6PhasesMcfAstar(b *testing.B) {
	runExperiment(b, "fig6", map[string]string{
		"ipc_429.mcf_Nehalem":   "mcf-IPC",
		"ipc_473.astar_Nehalem": "astar-IPC",
	})
}

func BenchmarkFig7PhasesBwavesGromacs(b *testing.B) {
	runExperiment(b, "fig7", map[string]string{
		"ipc_410.bwaves_Nehalem":  "bwaves-IPC",
		"ipc_435.gromacs_Nehalem": "gromacs-IPC",
	})
}

func BenchmarkFig8IPCvsInstructions(b *testing.B) {
	runExperiment(b, "fig8", map[string]string{
		"instr_M_Nehalem": "instr-M",
	})
}

func BenchmarkFig9CompilerComparison(b *testing.B) {
	runExperiment(b, "fig9", map[string]string{
		"ipc_a_hmmer_gcc": "hmmer-gcc-IPC",
		"ipc_a_hmmer_icc": "hmmer-icc-IPC",
	})
}

func BenchmarkFig10ProcessConflicts(b *testing.B) {
	runExperiment(b, "fig10", map[string]string{
		"drop_pct_u1job1": "u1job1-drop-%",
		"min_cpu_pct":     "min-%CPU",
	})
}

func BenchmarkFig11McfInterference(b *testing.B) {
	runExperiment(b, "fig11", map[string]string{
		"slowdown_3runs_pct":  "3copy-slowdown-%",
		"samecore_slowdown_x": "samecore-x",
	})
}

func BenchmarkValidationInstructionCount(b *testing.B) {
	runExperiment(b, "val24", map[string]string{
		"worst_error_pct":     "worst-err-%",
		"worst_mux_error_pct": "worst-mux-err-%",
	})
}

func BenchmarkPerturbationOverhead(b *testing.B) {
	runExperiment(b, "per25", map[string]string{
		"overhead_pct":    "overhead-%",
		"noise_pct":       "noise-%",
		"inscount_factor": "inscount-x",
	})
}

// --- substrate micro-benchmarks ---

func BenchmarkCacheSetAssocAccess(b *testing.B) {
	c, err := cache.NewSetAssoc(32<<10, 8, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i*64) % (1 << 20))
	}
}

func BenchmarkCacheMissRatioCurve(b *testing.B) {
	p := cache.TwoLevelProfile(256<<10, 16<<20, 0.8, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.MissRatio(float64(1 + i%(32<<20)))
	}
}

func BenchmarkCacheShareCapacity(b *testing.B) {
	sharers := []cache.Sharer{
		{RefRate: 2e9, Profile: cache.TwoLevelProfile(2<<20, 64<<20, 0.7, 0.02)},
		{RefRate: 1e9, Profile: cache.TwoLevelProfile(1<<20, 16<<20, 0.8, 0.01)},
		{RefRate: 5e8, Profile: cache.TwoLevelProfile(512<<10, 8<<20, 0.9, 0.01)},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cache.ShareCapacity(8<<20, sharers)
	}
}

func BenchmarkTimingModelEvaluate(b *testing.B) {
	m := machine.XeonW3550()
	ctx := cpu.DefaultContext(m)
	params := cpu.PhaseParams{
		BaseCPI: 0.6, LoadsPKI: 300, StoresPKI: 100, BranchesPKI: 150,
		BranchMissRatio: 0.03, MLP: 5,
		Reuse: cache.TwoLevelProfile(256<<10, 8<<20, 0.85, 0.01),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cpu.Evaluate(params, ctx)
	}
}

func BenchmarkVMStep(b *testing.B) {
	prog, inputs := ukernel.FPMicroKernel(ukernel.FPModeSSE, ukernel.FPFinite, 1<<60)
	vm, err := ukernel.NewVM(prog, machine.XeonW3550())
	if err != nil {
		b.Fatal(err)
	}
	inputs.Apply(vm)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := vm.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchedulerQuantum(b *testing.B) {
	k, err := sched.New(machine.XeonE5640x2(), sched.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		w := workload.Synthetic(workload.SyntheticSpec{Name: "j", IPC: 1.2})
		spin, err := workload.NewSpin(w, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		k.Spawn("u", "j", spin, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Advance(10 * time.Millisecond)
	}
}

func BenchmarkPMURead(b *testing.B) {
	k, err := sched.New(machine.XeonW3550(), sched.Options{})
	if err != nil {
		b.Fatal(err)
	}
	w := workload.Synthetic(workload.SyntheticSpec{Name: "j", IPC: 1.5})
	spin, err := workload.NewSpin(w, 1)
	if err != nil {
		b.Fatal(err)
	}
	task := k.Spawn("u", "j", spin, nil)
	backend := pmu.New(k)
	reg := hpm.DefaultRegistry()
	var events []hpm.EventDesc
	for _, name := range []string{hpm.EventCycles, hpm.EventInstructions, hpm.EventCacheMisses} {
		d, _ := reg.Lookup(name)
		events = append(events, d)
	}
	ctr, err := backend.Attach(task.ID(), events)
	if err != nil {
		b.Fatal(err)
	}
	defer ctr.Close()
	k.Advance(time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctr.Read(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMetricExprEval(b *testing.B) {
	expr := metrics.MustCompile("per100(CACHE_MISSES, INSTRUCTIONS) + ratio(INSTRUCTIONS, CYCLES)")
	env := metrics.MapEnv{"CACHE_MISSES": 1234, "INSTRUCTIONS": 1e9, "CYCLES": 2e9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expr.Eval(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonitorSample(b *testing.B) {
	sc, err := NewScenario(MachineXeonW3550)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := sc.StartSynthetic("u", "job", 1.5); err != nil {
			b.Fatal(err)
		}
	}
	mon, err := NewSimMonitor(sc, Config{Interval: 100 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	defer mon.Close()
	if _, err := mon.SampleNow(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mon.Sample(); err != nil {
			b.Fatal(err)
		}
	}
}
