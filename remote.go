package tiptop

import (
	"fmt"
	"io"
	"time"

	"tiptop/internal/metrics"
	"tiptop/internal/remote"
)

// MonitorAPI is the sampling surface shared by the local Monitor and
// the network-attached RemoteMonitor — everything the front ends (the
// TUI loops, the batch renderer, the export sinks) consume, so they run
// unchanged whether the counters are read on this machine or streamed
// from a tiptopd across the network.
type MonitorAPI interface {
	Machine() string
	Interval() time.Duration
	Headers() []string
	Columns() []string
	Sample() (*Sample, error)
	SampleNow() (*Sample, error)
	Render(w io.Writer, s *Sample) error
	Close() error
}

var (
	_ MonitorAPI = (*Monitor)(nil)
	_ MonitorAPI = (*RemoteMonitor)(nil)
)

// ColumnSpec describes one metric column of a monitor's active screen,
// including the display attributes (width, printf format) remote
// renderers need to reproduce the local output byte-for-byte.
type ColumnSpec struct {
	Name   string
	Header string
	Format string
	Width  int
}

// ColumnSpecs returns the active screen's column descriptions.
func (m *Monitor) ColumnSpecs() []ColumnSpec {
	cols := m.session.Screen().Columns
	out := make([]ColumnSpec, len(cols))
	for i, c := range cols {
		out[i] = ColumnSpec{Name: c.Name, Header: c.Header, Format: c.Format, Width: c.Width}
	}
	return out
}

// WireSample converts one of the monitor's samples to the wire
// representation tiptopd serves — the single place the public sample →
// wire translation lives (the daemon's publish loop and the examples
// all go through it).
func (m *Monitor) WireSample(s *Sample) *remote.Sample {
	ws := &remote.Sample{
		Machine:         m.Machine(),
		IntervalSeconds: m.Interval().Seconds(),
		TimeSeconds:     s.Time.Seconds(),
		Dropped:         s.Dropped,
		Rows:            make([]remote.Row, 0, len(s.Rows)),
	}
	for _, c := range m.ColumnSpecs() {
		ws.Columns = append(ws.Columns, remote.Column{
			Name: c.Name, Header: c.Header, Width: c.Width, Format: c.Format,
		})
	}
	for i := range s.Rows {
		r := &s.Rows[i]
		ws.Rows = append(ws.Rows, remote.Row{
			PID:          r.PID,
			TID:          r.TID,
			User:         r.User,
			Command:      r.Command,
			State:        r.State,
			CPUPct:       r.CPUPct,
			IPC:          r.IPC,
			Monitored:    r.Monitored,
			StartSeconds: r.Start.Seconds(),
			Coverage:     wireCoverage(r.Coverage),
			Values:       r.Columns,
			Events:       r.Events,
		})
	}
	return ws
}

// wireCoverage maps a row coverage to its wire form: exact counting
// (>= 1, or the zero value of rows predating the field) is elided from
// the JSON, so only multiplexed rows spend bytes on it.
func wireCoverage(c float64) float64 {
	if c >= 1 {
		return 0
	}
	return c
}

// coverageFromWire is the inverse: absent means exact.
func coverageFromWire(c float64) float64 {
	if c <= 0 || c > 1 {
		return 1
	}
	return c
}

// RemoteMonitor is a Monitor whose engine runs in a tiptopd somewhere
// else: Sample blocks on the daemon's /api/v1/stream push (pacing the
// caller to the remote refresh cadence), SampleNow polls the latest
// refresh, and Render reproduces the remote screen byte-for-byte from
// the wire column specs. Everything that consumes a MonitorAPI — the
// interactive TUI, batch mode, CSV/JSONL sinks, a subscribed Recorder —
// works against it unchanged.
type RemoteMonitor struct {
	c      *remote.Client
	screen *metrics.Screen
	recs   []*Recorder
}

// NewRemoteMonitor attaches to a tiptopd at url ("host:port" or a full
// URL, as served by tiptopd -addr).
func NewRemoteMonitor(url string) (*RemoteMonitor, error) {
	return NewRemoteMonitorWire(url, "")
}

// NewRemoteMonitorWire attaches like NewRemoteMonitor and selects the
// stream encoding: "binary" negotiates the length-prefixed binary
// frame (tiptop -connect -wire binary), transparently falling back to
// SSE + JSON against daemons that predate it; "json" or "" keeps the
// default.
func NewRemoteMonitorWire(url, wire string) (*RemoteMonitor, error) {
	c, err := remote.DialWith(url, remote.DialOptions{Wire: wire})
	if err != nil {
		return nil, err
	}
	m := &RemoteMonitor{c: c}
	if ws := c.Latest(); ws != nil {
		m.screen = ws.Screen()
	}
	return m, nil
}

// Machine describes the remote machine and where it is monitored from.
func (m *RemoteMonitor) Machine() string {
	return fmt.Sprintf("%s @ %s", m.c.Machine(), m.c.Host())
}

// Interval returns the remote monitor's refresh period.
func (m *RemoteMonitor) Interval() time.Duration { return m.c.Interval() }

// Headers returns the remote screen's column headings.
func (m *RemoteMonitor) Headers() []string {
	if ws := m.c.Latest(); ws != nil {
		return ws.Headers()
	}
	return nil
}

// Columns returns the remote screen's column names.
func (m *RemoteMonitor) Columns() []string {
	if ws := m.c.Latest(); ws != nil {
		return ws.ColumnNames()
	}
	return nil
}

// Sample blocks until the remote daemon publishes its next refresh.
func (m *RemoteMonitor) Sample() (*Sample, error) {
	ws, err := m.c.Next()
	if err != nil {
		return nil, err
	}
	return m.convert(ws), nil
}

// SampleNow fetches the remote daemon's latest refresh without waiting
// for a new one.
func (m *RemoteMonitor) SampleNow() (*Sample, error) {
	ws, err := m.c.Poll()
	if err != nil {
		return nil, err
	}
	return m.convert(ws), nil
}

// convert turns a wire sample into the public representation, keeps the
// synthesized screen current, and feeds subscribed recorders — the same
// observer contract the local engine honors.
func (m *RemoteMonitor) convert(ws *remote.Sample) *Sample {
	m.screen = ws.Screen()
	out := &Sample{Time: ws.Time(), Rows: make([]Row, 0, len(ws.Rows)), Dropped: ws.Dropped}
	for i := range ws.Rows {
		r := &ws.Rows[i]
		row := Row{
			PID:       r.PID,
			TID:       r.TID,
			User:      r.User,
			Command:   r.Command,
			State:     r.State,
			CPUPct:    r.CPUPct,
			IPC:       r.IPC,
			Columns:   append([]float64(nil), r.Values...),
			Coverage:  coverageFromWire(r.Coverage),
			Monitored: r.Monitored,
			Start:     time.Duration(r.StartSeconds * float64(time.Second)),
			Events:    make(map[string]uint64, len(r.Events)),
		}
		for e, v := range r.Events {
			row.Events[e] = v
		}
		out.Rows = append(out.Rows, row)
	}
	if len(m.recs) > 0 {
		cs := ws.CoreSample()
		for _, rec := range m.recs {
			rec.h.Observe(cs)
		}
	}
	return out
}

// Subscribe attaches a Recorder: every subsequent Sample/SampleNow
// feeds it, exactly as with a local Monitor. Not safe to call
// concurrently with Sample.
func (m *RemoteMonitor) Subscribe(r *Recorder) {
	if r == nil {
		return
	}
	if ws := m.c.Latest(); ws != nil {
		r.h.SetColumns(ws.ColumnNames())
	}
	m.recs = append(m.recs, r)
}

// Unsubscribe detaches a previously subscribed recorder.
func (m *RemoteMonitor) Unsubscribe(r *Recorder) {
	for i, have := range m.recs {
		if have == r {
			m.recs = append(m.recs[:i], m.recs[i+1:]...)
			return
		}
	}
}

// Render writes the sample as a batch-mode text block, byte-identical
// to the remote daemon rendering the same refresh locally.
func (m *RemoteMonitor) Render(w io.Writer, s *Sample) error {
	screen := m.screen
	if screen == nil {
		screen = &metrics.Screen{Name: "remote"}
	}
	return renderSample(screen, w, s)
}

// Close detaches from the remote daemon.
func (m *RemoteMonitor) Close() error { return m.c.Close() }
