package main

// The -bench-store mode: measure the durable history store's hot paths
// — steady-state append cost (which must stay near-zero-alloc, like
// the recorder it tees from), crash recovery of a million-record store,
// and a range query served from the 1-minute downsample tier — and
// write them as machine-readable JSON (BENCH_store.json), the third
// trajectory file next to BENCH_refresh.json and BENCH_daemon.json.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"tiptop/internal/core"
	"tiptop/internal/hpm"
	"tiptop/internal/store"
)

// storeBenchTasks is the refresh width the append benchmark uses.
const storeBenchTasks = 100

// storeResult is one benchmark measurement in BENCH_store.json.
type storeResult struct {
	Name        string  `json:"name"`
	Tasks       int     `json:"tasks,omitempty"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// storeRecovery is the recovery measurement: reopening (and thereby
// scanning, checksumming and clipping) a store of Records records.
type storeRecovery struct {
	Records       int64   `json:"records"`
	DiskBytes     int64   `json:"disk_bytes"`
	Seconds       float64 `json:"seconds"`
	RecordsPerSec float64 `json:"records_per_sec"`
}

// storeCompaction is the compaction measurement: rewriting the
// recovery store's sealed segments into the columnar record format v2.
type storeCompaction struct {
	Segments    int     `json:"segments"`
	Records     int64   `json:"records"`
	BytesBefore int64   `json:"bytes_before"`
	BytesAfter  int64   `json:"bytes_after"`
	Ratio       float64 `json:"ratio"`
	Seconds     float64 `json:"seconds"`
}

// storeReport is the BENCH_store.json document.
type storeReport struct {
	GeneratedBy string        `json:"generated_by"`
	GoMaxProcs  int           `json:"go_max_procs"`
	GoVersion   string        `json:"go_version"`
	Benchmarks  []storeResult `json:"benchmarks"`
	// AppendAllocsPerOp mirrors the StoreAppend benchmark's allocs/op —
	// the number CI gates on (steady-state appends must stay within a
	// few allocations).
	AppendAllocsPerOp int64           `json:"append_allocs_per_op"`
	Recovery          storeRecovery   `json:"recovery"`
	Compaction        storeCompaction `json:"compaction"`
	// CompactionRatio mirrors Compaction.Ratio — CI gates on the v2
	// rewrite shrinking the JSON log at least 3x.
	CompactionRatio float64 `json:"compaction_ratio"`
}

// benchSample builds one synthetic refresh of n tasks at time now.
func benchSample(now time.Duration, n int) *core.Sample {
	s := &core.Sample{Time: now}
	for i := 0; i < n; i++ {
		pid := 100 + i
		s.Rows = append(s.Rows, core.Row{
			Info: core.TaskInfo{
				ID:   hpm.TaskID{PID: pid, TID: pid},
				User: "bench", Comm: "job", State: "R",
			},
			CPUPct: 50,
			Values: []float64{1.5, 2.5, 3.5, 4.5},
			Events: map[string]uint64{
				hpm.EventInstructions: uint64(1000 * pid),
				hpm.EventCycles:       uint64(500 * pid),
				hpm.EventCacheMisses:  uint64(pid),
			},
			Valid: true,
		})
	}
	return s
}

// benchStore measures the store and writes <outDir>/BENCH_store.json.
func benchStore(outDir string, recoveryRecords int64) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	report := storeReport{
		GeneratedBy: "tipbench -bench-store",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
	}
	add := func(name string, tasks int, res testing.BenchmarkResult) {
		report.Benchmarks = append(report.Benchmarks, storeResult{
			Name:        name,
			Tasks:       tasks,
			Iterations:  res.N,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
		fmt.Printf("   %d iterations, %.0f ns/op, %d allocs/op\n",
			res.N, float64(res.NsPerOp()), res.AllocsPerOp())
	}

	// Steady-state append of a 100-task refresh, downsampling included
	// (the tee path a tiptopd -store daemon runs every interval).
	fmt.Println("== bench StoreAppend")
	appendDir, err := os.MkdirTemp("", "tipbench-store-append")
	if err != nil {
		return err
	}
	defer os.RemoveAll(appendDir)
	st, err := store.Open(appendDir, store.Options{Budget: 1 << 30})
	if err != nil {
		return err
	}
	st.SetColumns([]string{"mcycle", "minst", "ipc", "dmis"})
	sample := benchSample(0, storeBenchTasks)
	now := time.Duration(0)
	for i := 0; i < 8; i++ { // warm segments, buffers, accumulators
		now += time.Second
		sample.Time = now
		if err := st.AppendSample(sample); err != nil {
			return err
		}
	}
	appendRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			now += time.Second
			sample.Time = now
			if err := st.AppendSample(sample); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("StoreAppend", storeBenchTasks, appendRes)
	report.AppendAllocsPerOp = appendRes.AllocsPerOp()
	if err := st.Close(); err != nil {
		return err
	}

	// The same refresh under a group-commit fsync policy (flush every
	// 100 appends): what -fsync 100-records costs per append, amortized
	// over the batch.
	fmt.Println("== bench StoreAppendFsync100")
	fsyncDir, err := os.MkdirTemp("", "tipbench-store-fsync")
	if err != nil {
		return err
	}
	defer os.RemoveAll(fsyncDir)
	st, err = store.Open(fsyncDir, store.Options{Budget: 1 << 30, Fsync: store.FsyncPolicy{Records: 100}})
	if err != nil {
		return err
	}
	st.SetColumns([]string{"mcycle", "minst", "ipc", "dmis"})
	now = 0
	for i := 0; i < 8; i++ {
		now += time.Second
		sample.Time = now
		if err := st.AppendSample(sample); err != nil {
			return err
		}
	}
	add("StoreAppendFsync100", storeBenchTasks, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			now += time.Second
			sample.Time = now
			if err := st.AppendSample(sample); err != nil {
				b.Fatal(err)
			}
		}
	}))
	if err := st.Close(); err != nil {
		return err
	}

	// Recovery: build a store of recoveryRecords single-task refreshes,
	// then time Open's full scan-verify-clip pass.
	fmt.Printf("== recovery of a %d-record store\n", recoveryRecords)
	recDir, err := os.MkdirTemp("", "tipbench-store-recovery")
	if err != nil {
		return err
	}
	defer os.RemoveAll(recDir)
	st, err = store.Open(recDir, store.Options{Budget: 1 << 40})
	if err != nil {
		return err
	}
	st.SetColumns([]string{"ipc"})
	one := benchSample(0, 1)
	now = 0
	for st.Records() < recoveryRecords {
		now += time.Second
		one.Time = now
		if err := st.AppendSample(one); err != nil {
			return err
		}
	}
	written := st.Records()
	usage := st.DiskUsage()
	if err := st.Close(); err != nil {
		return err
	}
	start := time.Now()
	st, err = store.Open(recDir, store.Options{Budget: 1 << 40})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if got := st.Records(); got != written {
		return fmt.Errorf("recovery lost records: wrote %d, recovered %d", written, got)
	}
	report.Recovery = storeRecovery{
		Records:       written,
		DiskBytes:     usage,
		Seconds:       elapsed.Seconds(),
		RecordsPerSec: float64(written) / elapsed.Seconds(),
	}
	fmt.Printf("   %d records (%d MiB) recovered in %s (%.0f records/s)\n",
		written, usage>>20, elapsed.Truncate(time.Millisecond), report.Recovery.RecordsPerSec)

	// Compaction: rewrite the recovered store's sealed JSON segments
	// into the columnar record format v2 and report the byte ratio —
	// the density the format buys on real append-shaped history.
	fmt.Println("== compaction to record format v2")
	start = time.Now()
	cres, err := st.Compact(store.CompactOptions{})
	if err != nil {
		return err
	}
	celapsed := time.Since(start)
	var comp storeCompaction
	for _, t := range cres.Tiers {
		comp.Segments += t.Segments
		comp.Records += t.Records
		comp.BytesBefore += t.BytesBefore
		comp.BytesAfter += t.BytesAfter
	}
	comp.Seconds = celapsed.Seconds()
	if comp.BytesAfter > 0 {
		comp.Ratio = float64(comp.BytesBefore) / float64(comp.BytesAfter)
	}
	report.Compaction = comp
	report.CompactionRatio = comp.Ratio
	fmt.Printf("   %d segments (%d records): %d -> %d bytes (%.1fx) in %s\n",
		comp.Segments, comp.Records, comp.BytesBefore, comp.BytesAfter,
		comp.Ratio, celapsed.Truncate(time.Millisecond))

	// A week-at-a-glance query served from the 1-minute tier of the
	// store just recovered and compacted — the read path the
	// downsampling tiers buy, now decoding v2 segments.
	fmt.Println("== bench StoreQuery1mTier")
	add("StoreQuery1mTier", 1, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := st.Query(store.QueryOptions{PID: -1, StepSeconds: 60})
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Series) == 0 {
				b.Fatal("empty 1m tier")
			}
		}
	}))
	if err := st.Close(); err != nil {
		return err
	}

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(outDir, "BENCH_store.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("store benchmarks:", path)
	return nil
}
