package main

// The -validate mode: the counter-validation oracle. Every
// ukernel.ValidationSuite micro-kernel runs as a live workload on all
// four conformance machine models, and the measured counts are asserted
// at each pipeline layer (session deltas, mux extrapolation, store
// round-trip, derived query expressions) against the kernels' analytic
// expectations. The matrix is written to <outDir>/VALIDATE.json and the
// exit status carries the verdict — this is the `make validate` CI gate.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"tiptop/internal/validate"
)

// validateReport is the VALIDATE.json document: the conformance matrix
// plus provenance.
type validateReport struct {
	GeneratedBy string `json:"generated_by"`
	GoVersion   string `json:"go_version"`
	validate.Report
}

// benchValidate runs the conformance harness and writes
// <outDir>/VALIDATE.json, returning an error when any gate failed.
func benchValidate(outDir string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	fmt.Println("== validate: analytic micro-kernels through session → mux → store → query")
	rep, err := validate.Run(validate.Options{})
	if err != nil {
		return err
	}
	report := validateReport{
		GeneratedBy: "tipbench -validate",
		GoVersion:   runtime.Version(),
		Report:      *rep,
	}
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(outDir, "VALIDATE.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}

	failed := 0
	for _, e := range rep.Entries {
		if !e.Pass {
			failed++
			fmt.Printf("   FAIL %s on %s, %s layer, %s: expected %.6g measured %.6g (rel error %.4f)\n",
				e.Kernel, e.Model, e.Layer, e.Event, e.Expected, e.Measured, e.RelError)
		}
	}
	fmt.Printf("   %d kernels × %d models, %d assertions; worst muxed rel error %.4f (tolerance %.2f), %d exact violations, %d unsupported events\n",
		len(rep.Kernels), len(rep.Models), len(rep.Entries),
		rep.WorstMuxedRelError, rep.MuxTolerance, rep.ExactViolations, rep.UnsupportedEvents)
	fmt.Println("validation matrix:", path)
	if !rep.Pass || failed > 0 {
		return fmt.Errorf("validation failed: %d entries out of tolerance", failed)
	}
	return nil
}
