package main

// The -bench-daemon mode: measure the serving-layer hot paths of
// tiptopd — the per-scrape cost of the cached, ETag'd /metrics encoding
// against re-encoding per scrape, the one-time wire encode of a
// refresh, and the SSE hub's fan-out to many subscribers — and write
// them as machine-readable JSON (BENCH_daemon.json) so the serving
// trajectory is tracked across PRs like the engine's refresh cost.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"tiptop/internal/core"
	"tiptop/internal/export"
	"tiptop/internal/history"
	"tiptop/internal/metrics"
	"tiptop/internal/remote"
	"tiptop/internal/sim/machine"
	"tiptop/internal/sim/pmu"
	"tiptop/internal/sim/proc"
	"tiptop/internal/sim/sched"
	"tiptop/internal/sim/workload"
)

// daemonBenchTasks is the fleet size the serving benchmarks run
// against: large enough that an OpenMetrics encode is genuinely
// expensive, small enough to keep `make bench` quick.
const daemonBenchTasks = 500

// daemonResult is one benchmark measurement in BENCH_daemon.json.
type daemonResult struct {
	Name        string  `json:"name"`
	Tasks       int     `json:"tasks"`
	Subscribers int     `json:"subscribers,omitempty"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// daemonReport is the BENCH_daemon.json document.
type daemonReport struct {
	GeneratedBy string         `json:"generated_by"`
	GoMaxProcs  int            `json:"go_max_procs"`
	GoVersion   string         `json:"go_version"`
	Benchmarks  []daemonResult `json:"benchmarks"`
	// CachedMetricsSpeedup is uncached-/cached- ns per /metrics scrape:
	// how much the per-refresh encode cache buys each scraper.
	CachedMetricsSpeedup float64 `json:"cached_metrics_speedup"`
}

// benchDaemon measures the serving layer and writes
// <outDir>/BENCH_daemon.json.
func benchDaemon(outDir string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	rec, sample, err := populatedRecorder(daemonBenchTasks)
	if err != nil {
		return err
	}
	ws := wireFromCore(sample)
	payload, err := ws.Encode()
	if err != nil {
		return err
	}

	report := daemonReport{
		GeneratedBy: "tipbench -bench-daemon",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
	}
	add := func(name string, subs int, res testing.BenchmarkResult) {
		report.Benchmarks = append(report.Benchmarks, daemonResult{
			Name:        name,
			Tasks:       daemonBenchTasks,
			Subscribers: subs,
			Iterations:  res.N,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
		fmt.Printf("   %d iterations, %.0f ns/op, %d allocs/op\n",
			res.N, float64(res.NsPerOp()), res.AllocsPerOp())
	}

	// One /metrics scrape when every scrape re-encodes the snapshot —
	// what the daemon did before the per-refresh cache.
	fmt.Println("== bench MetricsScrapeUncached")
	uncached := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := export.WriteOpenMetrics(io.Discard, rec.Snapshot()); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("MetricsScrapeUncached", 0, uncached)

	// One /metrics scrape against the cache at a fixed refresh version:
	// every scrape after the first serves the memoized body.
	fmt.Println("== bench MetricsScrapeCached")
	cache := remote.NewEncodeCache(func(w io.Writer) error {
		return export.WriteOpenMetrics(w, rec.Snapshot())
	})
	if _, _, err := cache.Get(1); err != nil {
		return err
	}
	cached := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			body, _, err := cache.Get(1)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := io.Discard.Write(body); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("MetricsScrapeCached", 0, cached)
	if cached.NsPerOp() > 0 {
		report.CachedMetricsSpeedup = float64(uncached.NsPerOp()) / float64(cached.NsPerOp())
	}
	fmt.Printf("   cached /metrics speedup: %.1fx\n", report.CachedMetricsSpeedup)

	// The refresh-side costs: encoding one refresh to the wire (paid
	// once per interval, not per subscriber) and fanning the encoded
	// frame out to many SSE subscribers.
	fmt.Println("== bench WireSampleEncode")
	add("WireSampleEncode", 0, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ws.Encode(); err != nil {
				b.Fatal(err)
			}
		}
	}))
	for _, subs := range []int{1, 256} {
		name := fmt.Sprintf("StreamFanout%d", subs)
		fmt.Printf("== bench %s\n", name)
		add(name, subs, benchFanout(subs, payload))
	}

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(outDir, "BENCH_daemon.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("daemon benchmarks:", path)
	return nil
}

// benchFanout measures Hub.Publish with n subscribers draining as fast
// as they can.
func benchFanout(n int, payload []byte) testing.BenchmarkResult {
	hub := remote.NewHub()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		ch, cancel := hub.Subscribe()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cancel()
			for range ch {
			}
		}()
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hub.Publish(uint64(i+1), payload)
		}
	})
	hub.Close()
	wg.Wait()
	return res
}

// populatedRecorder builds a recorder warmed with several refreshes of
// a many-task fleet, plus the last engine sample.
func populatedRecorder(tasks int) (*history.Recorder, *core.Sample, error) {
	m, ok := machine.Presets()["e5640"]
	if !ok {
		return nil, nil, fmt.Errorf("e5640 preset missing")
	}
	k, err := sched.New(m, sched.Options{})
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < tasks; i++ {
		spec := workload.ManyTaskSpec(i)
		spin, err := workload.NewSpin(workload.Synthetic(spec), int64(i+1))
		if err != nil {
			return nil, nil, err
		}
		k.Spawn(workload.ManyTaskUser(i), spec.Name, spin, nil)
	}
	screen := metrics.DefaultScreen()
	s, err := core.NewSession(pmu.New(k), proc.NewSource(k), proc.NewClock(k), core.Options{
		Screen:   screen,
		Interval: time.Second,
		FreqHz:   k.Machine().FreqHz,
		NumCPUs:  k.Machine().NumLogical(),
	})
	if err != nil {
		return nil, nil, err
	}
	defer s.Close()
	rec := history.New(history.Options{})
	names := make([]string, len(screen.Columns))
	for i, c := range screen.Columns {
		names[i] = c.Name
	}
	rec.SetColumns(names)
	var last *core.Sample
	for i := 0; i < 8; i++ {
		s.AdvanceClock()
		cs, err := s.Update()
		if err != nil {
			return nil, nil, err
		}
		rec.Observe(cs)
		last = cs
	}
	return rec, last, nil
}

// wireFromCore converts an engine sample to the wire format (the same
// translation tiptopd's publish path performs).
func wireFromCore(cs *core.Sample) *remote.Sample {
	ws := &remote.Sample{
		Machine:         "bench fleet",
		IntervalSeconds: 1,
		TimeSeconds:     cs.Time.Seconds(),
		Columns: []remote.Column{
			{Name: "mcycle", Header: "Mcycle", Width: 8, Format: "%8.2f"},
			{Name: "minst", Header: "Minst", Width: 8, Format: "%8.2f"},
			{Name: "ipc", Header: "IPC", Width: 6, Format: "%6.2f"},
			{Name: "dmis", Header: "DMIS", Width: 6, Format: "%6.2f"},
		},
		Rows: make([]remote.Row, 0, len(cs.Rows)),
	}
	for i := range cs.Rows {
		r := &cs.Rows[i]
		row := remote.Row{
			PID:          r.Info.ID.PID,
			TID:          r.Info.ID.TID,
			User:         r.Info.User,
			Command:      r.Info.Comm,
			State:        r.Info.State,
			CPUPct:       r.CPUPct,
			IPC:          r.IPC(),
			Monitored:    r.Valid,
			StartSeconds: r.Info.StartTime.Seconds(),
			Values:       r.Values,
			Events:       make(map[string]uint64, len(r.Events)),
		}
		for e, v := range r.Events {
			row.Events[e] = v
		}
		ws.Rows = append(ws.Rows, row)
	}
	return ws
}
