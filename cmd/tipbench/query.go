package main

// The -bench-query mode: measure the shared expression query engine —
// the IPC expression evaluated over a million-record store from the
// 10-second and 1-minute downsample tiers, a grouped topk ranking, and
// a 3-agent fleet merge — and write BENCH_query.json, the fourth
// trajectory file. CI gates on the 1m-tier query over an hour of data
// staying under a sanity threshold: the whole point of serving
// expressions from the coarsest tier is that a dashboard-shaped query
// must not reread the raw log.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"tiptop/internal/query"
	"tiptop/internal/store"
)

// queryReport is the BENCH_query.json document.
type queryReport struct {
	GeneratedBy  string        `json:"generated_by"`
	GoMaxProcs   int           `json:"go_max_procs"`
	GoVersion    string        `json:"go_version"`
	StoreRecords int64         `json:"store_records"`
	Benchmarks   []storeResult `json:"benchmarks"`
	// Query1mTier1hSeconds mirrors the QueryExpr1mTier1h benchmark in
	// seconds per evaluation — the number CI gates on.
	Query1mTier1hSeconds float64 `json:"query_1m_tier_1h_seconds"`
	// The scan benchmarks compare one full pass over the compacted 1m
	// tier: the serial full-decode baseline (the pre-vectorized path)
	// against the parallel, projected scan the query engine now rides.
	// CI gates the speedup and the per-record allocation rate.
	ScanRecords          int64   `json:"scan_records"`
	ScanAllocsPerOp      int64   `json:"scan_allocs_per_op"`
	ScanAllocsPerRecord  float64 `json:"scan_allocs_per_record"`
	QueryParallelSpeedup float64 `json:"query_parallel_speedup"`
}

// mustCompileBench compiles one benchmark expression against the
// synthetic store's vocabulary.
func mustCompileBench(src string) (*query.Compiled, error) {
	return query.Compile(src, query.KnownNames([]string{"mcycle", "minst", "ipc", "dmis"}))
}

// benchQuery measures the expression engine and writes
// <outDir>/BENCH_query.json. workers sizes the parallel scan pool
// (0 = one per CPU).
func benchQuery(outDir string, records int64, workers int) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	report := queryReport{
		GeneratedBy: "tipbench -bench-query",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
	}
	add := func(name string, res testing.BenchmarkResult) {
		report.Benchmarks = append(report.Benchmarks, storeResult{
			Name:        name,
			Iterations:  res.N,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
		fmt.Printf("   %d iterations, %.0f ns/op, %d allocs/op\n",
			res.N, float64(res.NsPerOp()), res.AllocsPerOp())
	}

	// One store of `records` records at a 1-second cadence — the same
	// shape the recovery benchmark uses, built once and queried from
	// every tier.
	fmt.Printf("== building a %d-record store\n", records)
	dir, err := os.MkdirTemp("", "tipbench-query")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	// Small segments so the compacted 1m tier spans enough files for the
	// parallel scan to divide.
	st, err := store.Open(dir, store.Options{Budget: 1 << 40, SegmentBytes: 64 << 10})
	if err != nil {
		return err
	}
	st.SetColumns([]string{"mcycle", "minst", "ipc", "dmis"})
	// 8 tasks per refresh: value and counter columns must be real
	// chains, not single floats, for the scan measurements to resemble
	// a monitored machine.
	one := benchSample(0, 8)
	now := time.Duration(0)
	for st.Records() < records {
		now += time.Second
		one.Time = now
		if err := st.AppendSample(one); err != nil {
			return err
		}
	}
	report.StoreRecords = st.Records()
	// Compact to the columnar v2 layout — projection only pays off on
	// columnar frames, and a long-lived store is compacted in practice.
	fmt.Println("== compacting to record format v2")
	if _, err := st.Compact(store.CompactOptions{}); err != nil {
		return err
	}
	end := st.LastTime().Seconds()
	window := query.Options{FromSeconds: end - 3600, ToSeconds: end}

	ipc, err := mustCompileBench("delta(INSTRUCTIONS) / delta(CYCLES)")
	if err != nil {
		return err
	}
	ranked, err := mustCompileBench("topk(5, rate(CYCLES)) by user")
	if err != nil {
		return err
	}
	runSolo := func(name string, c *query.Compiled, opt query.Options) error {
		fmt.Println("== bench " + name)
		var failed error
		add(name, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := query.QueryStore(st, c, opt)
				if err != nil {
					failed = err
					b.Fatal(err)
				}
				if len(res.Series) == 0 {
					failed = fmt.Errorf("%s: empty result", name)
					b.Fatal(failed)
				}
			}
		}))
		return failed
	}

	// The IPC expression over the trailing hour, served from the 10s
	// and 1m tiers, plus a grouped ranking from the 1m tier.
	tenSec := window
	tenSec.StepSeconds = 10
	if err := runSolo("QueryExpr10sTier1h", ipc, tenSec); err != nil {
		return err
	}
	oneMin := window
	oneMin.StepSeconds = 60
	if err := runSolo("QueryExpr1mTier1h", ipc, oneMin); err != nil {
		return err
	}
	report.Query1mTier1hSeconds = report.Benchmarks[len(report.Benchmarks)-1].NsPerOp / 1e9
	if err := runSolo("QueryExprTopKByUser1m", ranked, oneMin); err != nil {
		return err
	}

	// One full pass over the compacted 1m tier, serial full-decode
	// (every field of every record materialized fresh — the path every
	// query took before vectorized execution) versus the parallel,
	// projected scan decoding only what the IPC expression references
	// into per-worker scratch.
	runScan := func(name string, opts store.ScanOptions) (testing.BenchmarkResult, error) {
		fmt.Println("== bench " + name)
		var failed error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n := 0
				if _, err := st.ScanWith(opts, func(rec *store.Record, cols []string) error {
					n++
					return nil
				}); err != nil {
					failed = err
					b.Fatal(err)
				}
				if n == 0 {
					failed = fmt.Errorf("%s: empty scan", name)
					b.Fatal(failed)
				}
				report.ScanRecords = int64(n)
			}
		})
		add(name, res)
		return res, failed
	}
	tierScan := store.QueryOptions{PID: -1, StepSeconds: 60}
	serialRes, err := runScan("Scan1mTierSerialFull",
		store.ScanOptions{QueryOptions: tierScan, Workers: 1})
	if err != nil {
		return err
	}
	parallelRes, err := runScan("Scan1mTierParallelProjected", store.ScanOptions{
		QueryOptions: tierScan,
		Workers:      workers,
		Project:      true,
		Columns:      ipc.References(),
	})
	if err != nil {
		return err
	}
	report.ScanAllocsPerOp = parallelRes.AllocsPerOp()
	report.ScanAllocsPerRecord = float64(parallelRes.AllocsPerOp()) / float64(report.ScanRecords)
	report.QueryParallelSpeedup = float64(serialRes.NsPerOp()) / float64(parallelRes.NsPerOp())
	fmt.Printf("   %d-record 1m tier: parallel projected scan %.2fx over serial full decode, %.3f allocs/record\n",
		report.ScanRecords, report.QueryParallelSpeedup, report.ScanAllocsPerRecord)

	// The same hour-at-1m query merged across a 3-agent fleet, each
	// agent holding its own hour of records — the aggregator's
	// ?agent=* path.
	fmt.Println("== bench QueryExprFleetMerge3x1m")
	agents := map[string]*store.Store{}
	for i := 0; i < 3; i++ {
		adir, err := os.MkdirTemp("", "tipbench-query-agent")
		if err != nil {
			return err
		}
		defer os.RemoveAll(adir)
		ast, err := store.Open(adir, store.Options{Budget: 1 << 40})
		if err != nil {
			return err
		}
		defer ast.Close()
		ast.SetColumns([]string{"mcycle", "minst", "ipc", "dmis"})
		sample := benchSample(0, 1)
		for t := time.Second; t <= 3600*time.Second; t += time.Second {
			sample.Time = t
			if err := ast.AppendSample(sample); err != nil {
				return err
			}
		}
		agents[fmt.Sprintf("agent%d:941%d", i, i)] = ast
	}
	var failed error
	add("QueryExprFleetMerge3x1m", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := query.QueryFleet(agents, ipc, query.Options{StepSeconds: 60})
			if err != nil {
				failed = err
				b.Fatal(err)
			}
			if len(res.Series) == 0 {
				failed = fmt.Errorf("fleet merge: empty result")
				b.Fatal(failed)
			}
		}
	}))
	if failed != nil {
		return failed
	}
	if err := st.Close(); err != nil {
		return err
	}

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(outDir, "BENCH_query.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("query benchmarks:", path)
	return nil
}
