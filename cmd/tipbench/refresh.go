package main

// The -bench-refresh mode: measure the sampling engine's refresh cost
// (serial and sharded) on the many-task stress fleet and write the
// results as machine-readable JSON, so the performance trajectory is
// tracked across PRs instead of living in scrollback.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"tiptop/internal/core"
	"tiptop/internal/metrics"
	"tiptop/internal/sim/machine"
	"tiptop/internal/sim/pmu"
	"tiptop/internal/sim/proc"
	"tiptop/internal/sim/sched"
	"tiptop/internal/sim/workload"
)

// refreshResult is one benchmark measurement in BENCH_refresh.json.
type refreshResult struct {
	Name        string  `json:"name"`
	Tasks       int     `json:"tasks"`
	Parallelism int     `json:"parallelism"` // 0 = one shard per CPU
	Shards      int     `json:"shards"`      // shards actually used
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// refreshReport is the BENCH_refresh.json document.
type refreshReport struct {
	GeneratedBy string          `json:"generated_by"`
	GoMaxProcs  int             `json:"go_max_procs"`
	GoVersion   string          `json:"go_version"`
	Benchmarks  []refreshResult `json:"benchmarks"`
}

// benchRefresh measures steady-state Session.Update at each task count,
// serially and sharded, and writes <outDir>/BENCH_refresh.json.
func benchRefresh(outDir, tasksCSV string) error {
	var counts []int
	for _, s := range strings.Split(tasksCSV, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			return fmt.Errorf("bad -bench-tasks entry %q", s)
		}
		counts = append(counts, n)
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}

	report := refreshReport{
		GeneratedBy: "tipbench -bench-refresh",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
	}
	for _, tasks := range counts {
		for _, par := range []int{1, 0} {
			kind := "Serial"
			if par == 0 {
				kind = "Sharded"
			}
			name := fmt.Sprintf("Update%d%s", tasks, kind)
			fmt.Printf("== bench %s\n", name)
			res, shards, err := measureRefresh(tasks, par)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			report.Benchmarks = append(report.Benchmarks, refreshResult{
				Name:        name,
				Tasks:       tasks,
				Parallelism: par,
				Shards:      shards,
				Iterations:  res.N,
				NsPerOp:     float64(res.NsPerOp()),
				AllocsPerOp: res.AllocsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
			})
			fmt.Printf("   %d iterations, %.0f ns/op, %d allocs/op\n",
				res.N, float64(res.NsPerOp()), res.AllocsPerOp())
		}
	}

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(outDir, "BENCH_refresh.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("refresh benchmarks:", path)
	return nil
}

// measureRefresh runs testing.Benchmark over steady-state refreshes of
// a many-task kernel at the given shard count.
func measureRefresh(tasks, parallelism int) (testing.BenchmarkResult, int, error) {
	m, ok := machine.Presets()["e5640"]
	if !ok {
		return testing.BenchmarkResult{}, 0, fmt.Errorf("e5640 preset missing")
	}
	k, err := sched.New(m, sched.Options{})
	if err != nil {
		return testing.BenchmarkResult{}, 0, err
	}
	// The ManyTaskSpec stress fleet, the same load the engine's own
	// BenchmarkUpdate* benchmarks use.
	for i := 0; i < tasks; i++ {
		spec := workload.ManyTaskSpec(i)
		spin, err := workload.NewSpin(workload.Synthetic(spec), int64(i+1))
		if err != nil {
			return testing.BenchmarkResult{}, 0, err
		}
		k.Spawn(workload.ManyTaskUser(i), spec.Name, spin, nil)
	}
	s, err := core.NewSession(pmu.New(k), proc.NewSource(k), proc.NewClock(k), core.Options{
		Screen:      metrics.DefaultScreen(),
		Interval:    time.Second,
		FreqHz:      k.Machine().FreqHz,
		NumCPUs:     k.Machine().NumLogical(),
		Parallelism: parallelism,
	})
	if err != nil {
		return testing.BenchmarkResult{}, 0, err
	}
	defer s.Close()
	if _, err := s.Update(); err != nil { // attach pass
		return testing.BenchmarkResult{}, 0, err
	}
	s.AdvanceClock()
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Update(); err != nil {
				benchErr = err
				b.FailNow()
			}
		}
	})
	return res, s.Parallelism(), benchErr
}
