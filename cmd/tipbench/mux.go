package main

// The -bench-mux mode: measure what counter multiplexing costs and
// what it gives up. Cost: steady-state refreshes of the 12-event
// "wide" screen on a 4-counter Cortex-A7 model, through the rotating
// mux layer versus an unconstrained backend that pretends every event
// fits. Fidelity: the relative error of the Enabled/Running
// extrapolated totals against the simulator's ground truth on the
// steady scenario — the number CI gates at 5%.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"tiptop"
	"tiptop/internal/core"
	"tiptop/internal/hpm"
	"tiptop/internal/metrics"
	"tiptop/internal/mux"
	"tiptop/internal/sim/machine"
	"tiptop/internal/sim/pmu"
	"tiptop/internal/sim/proc"
	"tiptop/internal/sim/sched"
	"tiptop/internal/sim/workload"
)

// muxBenchResult is one refresh-cost measurement in BENCH_mux.json.
type muxBenchResult struct {
	Name        string  `json:"name"`
	Multiplexed bool    `json:"multiplexed"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// muxErrorResult is the extrapolation fidelity of one event.
type muxErrorResult struct {
	Event       string  `json:"event"`
	MaxRelError float64 `json:"max_rel_error"` // worst task, |extrapolated/true - 1|
}

// muxReport is the BENCH_mux.json document.
type muxReport struct {
	GeneratedBy string `json:"generated_by"`
	GoMaxProcs  int    `json:"go_max_procs"`
	GoVersion   string `json:"go_version"`
	// Machine and screen shape of the measurement.
	Machine  string `json:"machine"`
	Capacity int    `json:"capacity"`
	Events   int    `json:"events"`

	Benchmarks []muxBenchResult `json:"benchmarks"`

	// Extrapolation fidelity on the steady scenario; MaxRelError is the
	// overall worst case, the number the CI gate checks against 0.05.
	Refreshes     int              `json:"refreshes"`
	Extrapolation []muxErrorResult `json:"extrapolation"`
	MaxRelError   float64          `json:"max_rel_error"`
}

// benchMux measures the mux layer and writes <outDir>/BENCH_mux.json.
func benchMux(outDir string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	report := muxReport{
		GeneratedBy: "tipbench -bench-mux",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
		Machine:     "a7",
		Capacity:    machine.CortexA7().NumCounters,
	}
	wideEvents, err := core.ResolveScreenEvents(hpm.DefaultRegistry(), metrics.WideScreen())
	if err != nil {
		return err
	}
	report.Events = len(wideEvents)

	for _, muxed := range []bool{true, false} {
		name := "RefreshWideUnconstrained"
		if muxed {
			name = "RefreshWideMuxed"
		}
		fmt.Printf("== bench %s\n", name)
		res, err := measureMuxRefresh(muxed)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		report.Benchmarks = append(report.Benchmarks, muxBenchResult{
			Name:        name,
			Multiplexed: muxed,
			Iterations:  res.N,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
		fmt.Printf("   %d iterations, %.0f ns/op, %d allocs/op\n",
			res.N, float64(res.NsPerOp()), res.AllocsPerOp())
	}

	errs, refreshes, err := measureMuxError()
	if err != nil {
		return fmt.Errorf("extrapolation error: %w", err)
	}
	report.Refreshes = refreshes
	for _, e := range errs {
		report.Extrapolation = append(report.Extrapolation, e)
		if e.MaxRelError > report.MaxRelError {
			report.MaxRelError = e.MaxRelError
		}
	}
	fmt.Printf("== extrapolation error over %d refreshes: %.2f%% worst case\n",
		refreshes, report.MaxRelError*100)

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(outDir, "BENCH_mux.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("mux benchmarks:", path)
	return nil
}

// steadyA7Kernel builds a Cortex-A7 kernel running the steady
// scenario's four synthetic jobs.
func steadyA7Kernel() (*sched.Kernel, error) {
	k, err := sched.New(machine.CortexA7(), sched.Options{})
	if err != nil {
		return nil, err
	}
	specs := []workload.SyntheticSpec{
		{Name: "steady-cpu", IPC: 1.60},
		{Name: "steady-mix", IPC: 1.10, MemRefsPKI: 120},
		{Name: "steady-mem", IPC: 0.70, MemRefsPKI: 300, HotBytes: 512 << 10, WarmBytes: 4 << 20},
		{Name: "steady-low", IPC: 0.40, MemRefsPKI: 200, HotBytes: 256 << 10, WarmBytes: 2 << 20},
	}
	for i, spec := range specs {
		spin, err := workload.NewSpin(workload.Synthetic(spec), int64(i+1))
		if err != nil {
			return nil, err
		}
		k.Spawn("bench", spec.Name, spin, machine.MaskOf(machine.CPUID(i)))
	}
	return k, nil
}

// measureMuxRefresh runs testing.Benchmark over steady-state refreshes
// of the wide screen on the A7, with the PMU behind the rotating mux
// (12 events on 4 counters) or raw (the backend attaches everything,
// capacity ignored — the pre-multiplexing baseline).
func measureMuxRefresh(muxed bool) (testing.BenchmarkResult, error) {
	k, err := steadyA7Kernel()
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	var backend hpm.Backend = pmu.New(k)
	if muxed {
		backend = mux.Wrap(backend)
	}
	s, err := core.NewSession(backend, proc.NewSource(k), proc.NewClock(k), core.Options{
		Screen:   metrics.WideScreen(),
		Interval: 100 * time.Millisecond,
		FreqHz:   k.Machine().FreqHz,
		NumCPUs:  k.Machine().NumLogical(),
	})
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	defer s.Close()
	if _, err := s.Update(); err != nil { // attach pass
		return testing.BenchmarkResult{}, err
	}
	s.AdvanceClock()
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.Update(); err != nil {
				benchErr = err
				b.FailNow()
			}
		}
	})
	return res, benchErr
}

// measureMuxError replays the golden convergence setup through the
// public facade: the wide screen on the steady scenario, extrapolated
// refresh deltas summed and compared against the simulator's true
// per-task totals.
func measureMuxError() ([]muxErrorResult, int, error) {
	const refreshes = 100
	events := []string{"INSTRUCTIONS", "CYCLES"}

	sc, err := tiptop.NewNamedScenario("steady", 0.05)
	if err != nil {
		return nil, 0, err
	}
	mon, err := tiptop.NewSimMonitor(sc, tiptop.Config{Screen: "wide", Interval: 100 * time.Millisecond})
	if err != nil {
		return nil, 0, err
	}
	defer mon.Close()
	if _, err := mon.SampleNow(); err != nil { // attach pass
		return nil, 0, err
	}
	first, err := mon.SampleNow()
	if err != nil {
		return nil, 0, err
	}
	base := map[int]map[string]uint64{}
	for _, r := range first.Rows {
		base[r.PID] = map[string]uint64{}
		for _, ev := range events {
			v, err := sc.TaskTotal(r.PID, ev)
			if err != nil {
				return nil, 0, err
			}
			base[r.PID][ev] = v
		}
	}
	sums := map[int]map[string]uint64{}
	for i := 0; i < refreshes; i++ {
		s, err := mon.Sample()
		if err != nil {
			return nil, 0, err
		}
		for _, r := range s.Rows {
			if sums[r.PID] == nil {
				sums[r.PID] = map[string]uint64{}
			}
			for _, ev := range events {
				sums[r.PID][ev] += r.Events[ev]
			}
		}
	}

	var out []muxErrorResult
	for _, ev := range events {
		worst := 0.0
		for pid, got := range sums {
			truth, err := sc.TaskTotal(pid, ev)
			if err != nil {
				return nil, 0, err
			}
			want := truth - base[pid][ev]
			if want == 0 {
				return nil, 0, fmt.Errorf("pid %d %s: ground truth did not advance", pid, ev)
			}
			rel := float64(got[ev])/float64(want) - 1
			if rel < 0 {
				rel = -rel
			}
			if rel > worst {
				worst = rel
			}
		}
		out = append(out, muxErrorResult{Event: ev, MaxRelError: worst})
	}
	return out, refreshes, nil
}
