package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSelectedExperiment(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-run", "tab1", "-scale", "0.01", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	// Artifacts: per-experiment text, CSVs for plots, summary.
	txt, err := os.ReadFile(filepath.Join(dir, "tab1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(txt), "x87") {
		t.Fatalf("tab1.txt content: %s", txt)
	}
	sum, err := os.ReadFile(filepath.Join(dir, "SUMMARY.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sum), "tab1") {
		t.Fatal("summary missing experiment")
	}
}

func TestRunPlotsEmitCSVAndGnuplot(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-run", "fig8", "-scale", "0.01", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	csv, err := os.ReadFile(filepath.Join(dir, "fig8_1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(csv), "Nehalem") {
		t.Fatalf("csv content: %.100s", csv)
	}
	gp, err := os.ReadFile(filepath.Join(dir, "fig8_1.gp"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(gp), "plot") {
		t.Fatal("gnuplot script malformed")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "fig99"}); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag must fail")
	}
}

// TestBenchRefreshJSON drives -bench-refresh at a tiny task count and
// checks the machine-readable report. The real `make bench` run uses
// the default 1000,4000 fleet.
func TestBenchRefreshJSON(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-bench-refresh", "-bench-tasks", "8", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_refresh.json"))
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		GeneratedBy string `json:"generated_by"`
		GoMaxProcs  int    `json:"go_max_procs"`
		Benchmarks  []struct {
			Name        string  `json:"name"`
			Tasks       int     `json:"tasks"`
			Parallelism int     `json:"parallelism"`
			Shards      int     `json:"shards"`
			Iterations  int     `json:"iterations"`
			NsPerOp     float64 `json:"ns_per_op"`
			AllocsPerOp int64   `json:"allocs_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("BENCH_refresh.json: %v\n%s", err, data)
	}
	if report.GoMaxProcs <= 0 || report.GeneratedBy == "" {
		t.Fatalf("report meta = %+v", report)
	}
	if len(report.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want serial + sharded", len(report.Benchmarks))
	}
	serial, sharded := report.Benchmarks[0], report.Benchmarks[1]
	if serial.Name != "Update8Serial" || serial.Parallelism != 1 || serial.Shards != 1 {
		t.Fatalf("serial = %+v", serial)
	}
	if sharded.Name != "Update8Sharded" || sharded.Parallelism != 0 || sharded.Shards < 1 {
		t.Fatalf("sharded = %+v", sharded)
	}
	for _, b := range report.Benchmarks {
		if b.Tasks != 8 || b.Iterations <= 0 || b.NsPerOp <= 0 {
			t.Fatalf("bench = %+v", b)
		}
	}
}

// TestBenchMuxJSON drives -bench-mux and checks the machine-readable
// report carries both refresh measurements and an extrapolation error
// under the CI gate.
func TestBenchMuxJSON(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-bench-mux", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_mux.json"))
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		GeneratedBy string `json:"generated_by"`
		Capacity    int    `json:"capacity"`
		Events      int    `json:"events"`
		Benchmarks  []struct {
			Name        string  `json:"name"`
			Multiplexed bool    `json:"multiplexed"`
			Iterations  int     `json:"iterations"`
			NsPerOp     float64 `json:"ns_per_op"`
		} `json:"benchmarks"`
		Refreshes     int `json:"refreshes"`
		Extrapolation []struct {
			Event       string  `json:"event"`
			MaxRelError float64 `json:"max_rel_error"`
		} `json:"extrapolation"`
		MaxRelError float64 `json:"max_rel_error"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("BENCH_mux.json: %v\n%s", err, data)
	}
	if report.Capacity != 4 || report.Events <= report.Capacity {
		t.Fatalf("report must describe an oversubscribed PMU, got %d events on %d counters",
			report.Events, report.Capacity)
	}
	if len(report.Benchmarks) != 2 ||
		report.Benchmarks[0].Name != "RefreshWideMuxed" || !report.Benchmarks[0].Multiplexed ||
		report.Benchmarks[1].Name != "RefreshWideUnconstrained" || report.Benchmarks[1].Multiplexed {
		t.Fatalf("benchmarks = %+v", report.Benchmarks)
	}
	for _, b := range report.Benchmarks {
		if b.Iterations <= 0 || b.NsPerOp <= 0 {
			t.Fatalf("bench = %+v", b)
		}
	}
	if len(report.Extrapolation) != 2 || report.Refreshes <= 0 {
		t.Fatalf("extrapolation = %+v over %d refreshes", report.Extrapolation, report.Refreshes)
	}
	if report.MaxRelError <= 0 || report.MaxRelError > 0.05 {
		t.Fatalf("max_rel_error = %v, want within the 5%% CI gate", report.MaxRelError)
	}
}

func TestBenchRefreshBadTasks(t *testing.T) {
	for _, bad := range []string{"", "0", "-5", "abc", "10,x"} {
		if err := run([]string{"-bench-refresh", "-bench-tasks", bad, "-out", t.TempDir()}); err == nil {
			t.Errorf("-bench-tasks %q must fail", bad)
		}
	}
}
