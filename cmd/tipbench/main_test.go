package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSelectedExperiment(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-run", "tab1", "-scale", "0.01", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	// Artifacts: per-experiment text, CSVs for plots, summary.
	txt, err := os.ReadFile(filepath.Join(dir, "tab1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(txt), "x87") {
		t.Fatalf("tab1.txt content: %s", txt)
	}
	sum, err := os.ReadFile(filepath.Join(dir, "SUMMARY.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sum), "tab1") {
		t.Fatal("summary missing experiment")
	}
}

func TestRunPlotsEmitCSVAndGnuplot(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-run", "fig8", "-scale", "0.01", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	csv, err := os.ReadFile(filepath.Join(dir, "fig8_1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(csv), "Nehalem") {
		t.Fatalf("csv content: %.100s", csv)
	}
	gp, err := os.ReadFile(filepath.Join(dir, "fig8_1.gp"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(gp), "plot") {
		t.Fatal("gnuplot script malformed")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "fig99"}); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag must fail")
	}
}
