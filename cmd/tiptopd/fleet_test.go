package main

// End-to-end coverage of the -join aggregator: three live simulated
// agents merged into one per-machine-labelled /metrics and
// /api/v1/snapshot, and the SSE surface under concurrent subscribers
// while agents churn (the -race suite for the federation layer).

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tiptop"
	"tiptop/internal/history"
	"tiptop/internal/remote"
)

// agent is one live simulated tiptopd: monitor, recorder, sampling
// loop and HTTP surface.
type agent struct {
	d    *daemon
	ts   *httptest.Server
	stop chan struct{}
	done chan error
	mon  *tiptop.Monitor
}

func (a *agent) host() string { return strings.TrimPrefix(a.ts.URL, "http://") }

// close tears the agent down; safe to call twice.
func (a *agent) close(t *testing.T) {
	t.Helper()
	select {
	case <-a.stop:
	default:
		close(a.stop)
	}
	a.d.srv.Close()
	a.ts.Close()
	if err := <-a.done; err != nil {
		t.Errorf("agent loop: %v", err)
	}
	a.mon.Close()
}

// startAgent launches a live agent over the named scenario.
func startAgent(t *testing.T, scenario string) *agent {
	t.Helper()
	sc, err := tiptop.NewNamedScenario(scenario, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := tiptop.NewSimMonitor(sc, tiptop.Config{Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rec := tiptop.NewRecorder(tiptop.RecorderOptions{Capacity: 64, Window: time.Second})
	mon.Subscribe(rec)
	d := newDaemon(mon, rec, time.Millisecond, nil)
	a := &agent{
		d:    d,
		ts:   httptest.NewServer(d.handler()),
		stop: make(chan struct{}),
		done: make(chan error, 1),
		mon:  mon,
	}
	go func() { a.done <- d.loop(a.stop, 0) }()
	return a
}

// startFleet joins the agents and serves the aggregator over httptest.
func startFleet(t *testing.T, agents []*agent) (*remote.Fleet, *httptest.Server) {
	t.Helper()
	urls := make([]string, len(agents))
	for i, a := range agents {
		urls[i] = a.ts.URL
	}
	fleet, err := remote.NewFleet(urls, remote.FleetOptions{
		History:        history.Options{Capacity: 64, Window: time.Second},
		ReconnectDelay: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	fleet.Start(ctx)
	fd := newFleetDaemon(fleet, nil)
	ts := httptest.NewServer(fd.handler())
	t.Cleanup(func() {
		fleet.Close()
		ts.Close()
		cancel()
		fleet.Wait()
	})
	return fleet, ts
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestFleetAggregatorEndToEnd is the federation acceptance test: three
// live simulated agents, a -join aggregator serving a merged,
// per-machine-labelled /metrics and /api/v1/snapshot.
func TestFleetAggregatorEndToEnd(t *testing.T) {
	agents := []*agent{
		startAgent(t, "datacenter"),
		startAgent(t, "spec"),
		startAgent(t, "conflict"),
	}
	for _, a := range agents {
		a := a
		t.Cleanup(func() { a.close(t) })
	}
	fleet, ts := startFleet(t, agents)
	waitUntil(t, "all agents streaming", func() bool {
		snap := fleet.Snapshot()
		if snap.Cluster.AgentsUp != 3 {
			return false
		}
		for _, st := range snap.Agents {
			if st.Samples < 3 {
				return false
			}
		}
		return true
	})

	// Merged snapshot: per-machine entries plus cluster roll-up.
	status, body := get(t, ts.URL+"/api/v1/snapshot")
	if status != http.StatusOK {
		t.Fatalf("/api/v1/snapshot status = %d", status)
	}
	var snap struct {
		Agents []struct {
			Label     string `json:"label"`
			Connected bool   `json:"connected"`
		} `json:"agents"`
		Cluster struct {
			Agents       int     `json:"agents"`
			AgentsUp     int     `json:"agents_up"`
			Tasks        int     `json:"tasks"`
			IPC          float64 `json:"ipc"`
			Instructions uint64  `json:"instructions_total"`
		} `json:"cluster"`
		Machines map[string]struct {
			Machine struct {
				Tasks int `json:"tasks"`
			} `json:"machine"`
		} `json:"machines"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("snapshot JSON: %v\n%s", err, body)
	}
	if snap.Cluster.Agents != 3 || snap.Cluster.AgentsUp != 3 || len(snap.Machines) != 3 {
		t.Fatalf("cluster = %+v machines = %d", snap.Cluster, len(snap.Machines))
	}
	// datacenter has 11 tasks, spec 4, conflict 3.
	if m := snap.Machines[agents[0].host()]; m.Machine.Tasks != 11 {
		t.Fatalf("datacenter agent tasks = %d", m.Machine.Tasks)
	}
	sum := 0
	for _, m := range snap.Machines {
		sum += m.Machine.Tasks
	}
	if snap.Cluster.Tasks != sum || sum != 18 {
		t.Fatalf("cluster tasks %d != Σ machines %d (want 18)", snap.Cluster.Tasks, sum)
	}
	if snap.Cluster.IPC <= 0 || snap.Cluster.Instructions == 0 {
		t.Fatalf("cluster rates empty: %+v", snap.Cluster)
	}

	// Merged metrics: one exposition, per-machine labels, ETag'd.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb := new(strings.Builder)
	if _, err := fmt.Fprintf(mb, ""); err != nil {
		t.Fatal(err)
	}
	buf := bufio.NewScanner(resp.Body)
	buf.Buffer(make([]byte, 1<<20), 1<<20)
	for buf.Scan() {
		mb.WriteString(buf.Text())
		mb.WriteByte('\n')
	}
	resp.Body.Close()
	om := mb.String()
	etag := resp.Header.Get("ETag")
	if resp.StatusCode != http.StatusOK || etag == "" {
		t.Fatalf("/metrics status=%d etag=%q", resp.StatusCode, etag)
	}
	for _, want := range []string{
		"tiptop_fleet_agents 3",
		fmt.Sprintf(`tiptop_agent_up{machine="%s"} 1`, agents[0].host()),
		fmt.Sprintf(`tiptop_machine_tasks{machine="%s"} 11`, agents[0].host()),
		fmt.Sprintf(`tiptop_machine_tasks{machine="%s"} 4`, agents[1].host()),
		fmt.Sprintf(`tiptop_machine_tasks{machine="%s"} 3`, agents[2].host()),
		fmt.Sprintf(`tiptop_user_tasks{machine="%s",user="user1"} 8`, agents[0].host()),
		`tiptop_task_ipc{machine="`,
		"# EOF",
	} {
		if !strings.Contains(om, want) {
			t.Errorf("merged /metrics missing %q", want)
		}
	}
	if n := strings.Count(om, "# TYPE tiptop_machine_tasks gauge"); n != 1 {
		t.Errorf("tiptop_machine_tasks declared %d times", n)
	}

	// Agents listing.
	status, body = get(t, ts.URL+"/api/v1/agents")
	if status != http.StatusOK || strings.Count(body, `"connected": true`) != 3 {
		t.Fatalf("/api/v1/agents = %d %s", status, body)
	}
}

// TestFleetSSESubscribersDuringChurn hammers the aggregator's stream
// with concurrent subscribers while an agent dies mid-stream — run
// under -race this is the federation layer's concurrency regression
// suite.
func TestFleetSSESubscribersDuringChurn(t *testing.T) {
	agents := []*agent{
		startAgent(t, "datacenter"),
		startAgent(t, "spec"),
		startAgent(t, "conflict"),
	}
	// agents[0] is killed mid-test; the rest are cleaned up normally.
	for _, a := range agents[1:] {
		a := a
		t.Cleanup(func() { a.close(t) })
	}
	fleet, ts := startFleet(t, agents)
	waitUntil(t, "agents streaming", func() bool { return fleet.Snapshot().Cluster.AgentsUp == 3 })

	const subscribers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, subscribers)
	for i := 0; i < subscribers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				req, err := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/stream", nil)
				if err != nil {
					errs <- err
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
				resp, err := http.DefaultClient.Do(req.WithContext(ctx))
				if err != nil {
					cancel()
					continue // aggregator shutting down between rounds
				}
				// Read frames until the bounded context expires.
				buf := make([]byte, 4096)
				for {
					if _, err := resp.Body.Read(buf); err != nil {
						break
					}
				}
				resp.Body.Close()
				cancel()
			}
		}()
	}

	// Let subscribers stream, then kill one agent mid-flight.
	time.Sleep(100 * time.Millisecond)
	agents[0].close(t)
	waitUntil(t, "dead agent marked down", func() bool {
		snap := fleet.Snapshot()
		return snap.Cluster.AgentsUp == 2
	})
	// The aggregator keeps serving merged state for the survivors.
	status, body := get(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics during churn = %d", status)
	}
	if !strings.Contains(body, fmt.Sprintf(`tiptop_agent_up{machine="%s"} 0`, agents[0].host())) {
		t.Error("dead agent not reported down in /metrics")
	}
	if !strings.Contains(body, fmt.Sprintf(`tiptop_agent_up{machine="%s"} 1`, agents[1].host())) {
		t.Error("live agent not reported up in /metrics")
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRunFleetFlag drives the real run() in -join mode for a bounded
// number of observed samples.
func TestRunFleetFlag(t *testing.T) {
	a := startAgent(t, "datacenter")
	t.Cleanup(func() { a.close(t) })
	var sb strings.Builder
	err := run([]string{"-join", a.host(), "-addr", "127.0.0.1:0", "-n", "5"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "aggregating 1 agents") {
		t.Fatalf("stdout = %q", sb.String())
	}
}

func TestRunFleetFlagValidation(t *testing.T) {
	if err := run([]string{"-join", "h:1", "-sim", "spec"}, new(strings.Builder)); err == nil {
		t.Fatal("-join with -sim must fail")
	}
	if err := run([]string{"-join", " , "}, new(strings.Builder)); err == nil {
		t.Fatal("blank -join must fail")
	}
}
