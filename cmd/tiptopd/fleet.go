package main

// The -join mode: instead of sampling a local monitor, the daemon
// aggregates N remote tiptopd agents into one cluster-wide view and
// serves it on the same endpoints — the federation layer that turns
// per-machine counter monitoring into fleet monitoring.

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"tiptop/internal/history"
	"tiptop/internal/remote"
)

// fleetDaemon couples a remote.Fleet to the HTTP handlers. The fleet's
// OpenMetrics encode is cached per observed sample (the fleet version),
// so scrape cost is independent of scrape rate here too.
type fleetDaemon struct {
	fleet   *remote.Fleet
	metrics *remote.EncodeCache
}

func newFleetDaemon(f *remote.Fleet) *fleetDaemon {
	return &fleetDaemon{fleet: f, metrics: remote.NewEncodeCache(f.WriteOpenMetrics)}
}

func (fd *fleetDaemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", fd.index)
	mux.HandleFunc("GET /metrics", fd.handleMetrics)
	mux.HandleFunc("GET /api/v1/snapshot", fd.snapshot)
	mux.HandleFunc("GET /api/v1/agents", fd.agents)
	mux.HandleFunc("GET /api/v1/stream", fd.fleet.Hub().ServeSSE)
	return mux
}

func (fd *fleetDaemon) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "tiptopd aggregating %s\n\n/metrics\n/api/v1/snapshot\n/api/v1/agents\n/api/v1/stream\n",
		strings.Join(fd.fleet.Labels(), ", "))
}

func (fd *fleetDaemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	body, etag, err := fd.metrics.Get(fd.fleet.Version())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	remote.ServeCached(w, r, body, etag, "text/plain; version=0.0.4; charset=utf-8")
}

func (fd *fleetDaemon) snapshot(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, fd.fleet.Snapshot())
}

func (fd *fleetDaemon) agents(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Agents []remote.AgentStatus `json:"agents"`
	}{fd.fleet.Snapshot().Agents})
}

// runFleet serves the aggregated fleet until interrupted (or, with
// n > 0, until n agent samples have been observed — the bounded mode
// tests and demos use).
func runFleet(join, addr string, n, historyCap int, window time.Duration, stdout io.Writer) error {
	fleet, err := remote.NewFleet(strings.Split(join, ","), remote.FleetOptions{
		History: history.Options{Capacity: historyCap, Window: window},
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	fleet.Start(ctx)
	// Teardown order matters: cancel the agent streams before waiting
	// for their goroutines.
	defer func() {
		fleet.Close()
		cancel()
		fleet.Wait()
	}()
	fd := newFleetDaemon(fleet)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "tiptopd: aggregating %d agents (%s), serving http://%s/metrics\n",
		len(fleet.Labels()), strings.Join(fleet.Labels(), ", "), ln.Addr())

	srv := &http.Server{Handler: fd.handler()}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	interrupted := make(chan os.Signal, 1)
	signal.Notify(interrupted, os.Interrupt)
	defer signal.Stop(interrupted)

	shutdown := func() {
		fleet.Close()
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		_ = srv.Shutdown(sctx)
		<-serveDone
	}
	if n > 0 {
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for fleet.Version() < uint64(n) {
			select {
			case <-interrupted:
				shutdown()
				return nil
			case err := <-serveDone:
				return err
			case <-tick.C:
			}
		}
		shutdown()
		return nil
	}
	select {
	case <-interrupted:
		shutdown()
		return nil
	case err := <-serveDone:
		return err
	}
}
