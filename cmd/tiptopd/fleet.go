package main

// The -join mode: instead of sampling a local monitor, the daemon
// aggregates N remote tiptopd agents into one cluster-wide view and
// serves it on the same endpoints — the federation layer that turns
// per-machine counter monitoring into fleet monitoring.

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"tiptop"
	"tiptop/internal/core"
	"tiptop/internal/history"
	"tiptop/internal/query"
	"tiptop/internal/remote"
	"tiptop/internal/store"
)

// fleetDaemon couples a remote.Fleet to the HTTP handlers. The fleet's
// OpenMetrics encode is cached per observed sample (the fleet version),
// so scrape cost is independent of scrape rate here too.
type fleetDaemon struct {
	fleet   *remote.Fleet
	metrics *remote.EncodeCache
	// stores are the per-agent durable stores behind /api/v1/query
	// (selected by ?agent=label, merged fleet-wide by ?agent=*); empty
	// without -store.
	stores map[string]*store.Store
	// named maps stored expression names (config <expr> elements) to
	// their sources for /api/v1/query?expr=<name>.
	named map[string]string
}

func newFleetDaemon(f *remote.Fleet, stores map[string]*store.Store) *fleetDaemon {
	return &fleetDaemon{fleet: f, metrics: remote.NewEncodeCache(f.WriteOpenMetrics), stores: stores}
}

func (fd *fleetDaemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", fd.index)
	mux.HandleFunc("GET /metrics", fd.handleMetrics)
	mux.HandleFunc("GET /api/v1/snapshot", fd.snapshot)
	mux.HandleFunc("GET /api/v1/agents", fd.agents)
	mux.HandleFunc("GET /api/v1/stream", fd.fleet.Hub().ServeStream)
	mux.Handle("GET /api/v1/query", query.NamedExprs(fd.named, query.FleetHandler(fd.stores, fd.fleet.Labels)))
	return mux
}

func (fd *fleetDaemon) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "tiptopd aggregating %s\n\n/metrics\n/api/v1/snapshot\n/api/v1/agents\n/api/v1/stream\n",
		strings.Join(fd.fleet.Labels(), ", "))
	if len(fd.stores) > 0 {
		fmt.Fprintf(w, "/api/v1/query?agent=*&expr=&from=&to=&step=\n")
		fmt.Fprintf(w, "/api/v1/query?agent=&pid=&from=&to=&step=\n")
	}
}

// agentStoreDir maps an agent label to its store directory (the colon
// of host:port is awkward in file names).
func agentStoreDir(base, label string) string {
	return filepath.Join(base, strings.NewReplacer(":", "_", "/", "_").Replace(label))
}

func (fd *fleetDaemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	body, etag, err := fd.metrics.Get(fd.fleet.Version())
	if err != nil {
		remote.WriteError(w, http.StatusInternalServerError, err.Error())
		return
	}
	remote.ServeCached(w, r, body, etag, "text/plain; version=0.0.4; charset=utf-8")
}

func (fd *fleetDaemon) snapshot(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, fd.fleet.Snapshot())
}

func (fd *fleetDaemon) agents(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Agents []remote.AgentStatus `json:"agents"`
	}{fd.fleet.Snapshot().Agents})
}

// runFleet serves the aggregated fleet until interrupted (or, with
// n > 0, until n agent samples have been observed — the bounded mode
// tests and demos use). With cfg.StoreDir set, every agent's stream
// persists into a per-agent store under that directory.
func runFleet(join, addr string, n, historyCap int, window time.Duration, wire string, cfg tiptop.Config, stdout io.Writer) error {
	stores := map[string]*store.Store{}
	defer func() {
		// Close returns the first latched append error of each agent's
		// store; surface it instead of exiting silently incomplete.
		for label, st := range stores {
			if err := st.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "tiptopd: store %s: %v\n", label, err)
			}
		}
	}()
	opts := remote.FleetOptions{
		History: history.Options{Capacity: historyCap, Window: window},
		// The encoding the aggregator negotiates with each agent;
		// binary falls back per agent against daemons that predate it.
		Wire: wire,
	}
	if cfg.StoreDir != "" {
		dirOwner := map[string]string{}
		opts.Tee = func(label string) (core.Observer, error) {
			dir := agentStoreDir(cfg.StoreDir, label)
			if other, taken := dirOwner[dir]; taken {
				// Sanitization ("host:9412" → "host_9412") must not
				// silently point two agents' writers at one segment
				// chain.
				return nil, fmt.Errorf("agents %q and %q map to the same store directory %s", other, label, dir)
			}
			dirOwner[dir] = label
			st, err := store.Open(dir, store.Options{
				Retention: cfg.StoreRetention,
				Budget:    cfg.StoreBudget,
				Fsync:     cfg.StoreFsync,
			})
			if err != nil {
				return nil, err
			}
			stores[label] = st
			return st, nil
		}
	}
	fleet, err := remote.NewFleet(strings.Split(join, ","), opts)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	fleet.Start(ctx)
	// Teardown order matters: cancel the agent streams before waiting
	// for their goroutines.
	defer func() {
		fleet.Close()
		cancel()
		fleet.Wait()
	}()
	fd := newFleetDaemon(fleet, stores)
	fd.named = cfg.NamedExprs()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "tiptopd: aggregating %d agents (%s), serving http://%s/metrics\n",
		len(fleet.Labels()), strings.Join(fleet.Labels(), ", "), ln.Addr())

	srv := &http.Server{Handler: fd.handler()}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	interrupted := make(chan os.Signal, 1)
	signal.Notify(interrupted, os.Interrupt)
	defer signal.Stop(interrupted)

	shutdown := func() {
		fleet.Close()
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		_ = srv.Shutdown(sctx)
		<-serveDone
	}
	// storesErr reports the first latched append error of any agent's
	// store: like the solo daemon, an aggregator whose durable history
	// has stopped must fail loudly, not keep serving while one agent's
	// past silently goes missing.
	storesErr := func() error {
		for label, st := range stores {
			if err := st.Err(); err != nil {
				return fmt.Errorf("store %s: %w", label, err)
			}
		}
		return nil
	}
	if n > 0 {
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for fleet.Version() < uint64(n) {
			select {
			case <-interrupted:
				shutdown()
				return nil
			case err := <-serveDone:
				return err
			case <-tick.C:
				if err := storesErr(); err != nil {
					shutdown()
					return err
				}
			}
		}
		shutdown()
		return nil
	}
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-interrupted:
			shutdown()
			return nil
		case err := <-serveDone:
			return err
		case <-tick.C:
			if err := storesErr(); err != nil {
				shutdown()
				return err
			}
		}
	}
}
