// Command tiptopd runs a tiptop monitor as a daemon: the engine samples
// continuously (real machine or a simulated scenario), a Recorder keeps
// per-task history and roll-up aggregates, and an HTTP server exports
// them to other tools — the serving layer the paper's interactive tool
// stops short of.
//
// Endpoints:
//
//	/metrics                OpenMetrics / Prometheus text exposition,
//	                        cached per refresh and ETag'd: thousands of
//	                        scrapers cost one encode per interval
//	/api/v1/snapshot        latest refresh + aggregates, JSON
//	/api/v1/history?pid=N   recorded time series of one process, JSON
//	/api/v1/history         recorded PIDs, JSON
//	/api/v1/events          the event registry with backend support, JSON
//	/api/v1/sample          latest refresh in the versioned wire format
//	/api/v1/stream          SSE push of every refresh (tiptop -connect)
//	/api/v1/query           durable-store range queries (with -store):
//	                        ?pid=&from=&to=&step=, JSON or
//	                        &format=openmetrics text
//
// With -join the daemon becomes a fleet aggregator instead: it streams
// N remote tiptopd agents and serves their merged, per-machine-labelled
// state on /metrics, /api/v1/snapshot, /api/v1/agents and
// /api/v1/stream (see fleet.go). `tiptop -connect` attaches to agents,
// not to aggregators — the aggregator's stream interleaves machines.
//
// Usage:
//
//	tiptopd                        monitor the real machine on :9412
//	tiptopd -sim datacenter        serve the Figure 1 grid node
//	tiptopd -addr :8080 -d 1       custom listen address and cadence
//	tiptopd -history 1800 -n 100   deeper rings, exit after 100 refreshes
//	tiptopd -config f.xml          options (delay, sort, listen, ...) from XML
//	tiptopd -join host1:9412,host2:9412   aggregate a fleet of agents
//	tiptopd -store /var/lib/tiptop -retention 168h -budget 256MB
//	                               durable history: recover on boot, tee
//	                               every sample, serve range queries
//	tiptopd -fsync 2s,1000-records -compact 1h
//	                               group-commit durability; periodic
//	                               compaction to record format v2
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"time"

	"tiptop"
	"tiptop/internal/config"
	"tiptop/internal/remote"
	"tiptop/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tiptopd:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tiptopd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":9412", "HTTP listen address")
		delay      = fs.Float64("d", 2, "delay between refreshes, seconds")
		iterations = fs.Int("n", 0, "number of refreshes to serve (0 = until interrupted)")
		screenName = fs.String("screen", "", "screen: default, branch, fp, mem, lat, roofline, wide, system (default \"default\", or \"system\" with -system-wide)")
		sortBy     = fs.String("sort", "cpu", "sort key: cpu, pid, or a column name")
		user       = fs.String("u", "", "only monitor this user's tasks")
		parallel   = fs.Int("j", 0, "sampling shards (0 = one per CPU, 1 = serial)")
		simName    = fs.String("sim", "", "monitor a simulated scenario: spec, revolution, conflict, datacenter, assist, steady, validate")
		scale      = fs.Float64("scale", 0.01, "workload scale for simulated scenarios")
		systemWide = fs.Bool("system-wide", false, "monitor logical CPUs instead of tasks (perf's -a; one row per CPU)")
		counters   = fs.Int("counters", 0, "PMU counter capacity for the real backend: rotate events beyond it in userland (0 = kernel multiplexing)")
		historyCap = fs.Int("history", 0, "points retained per task (0 = default 600)")
		window     = fs.Duration("window", 0, "windowed-rate horizon, capped at 128 refreshes (0 = default 1m)")
		confFile   = fs.String("config", "", "load options from an XML configuration file (set options override flags)")
		join       = fs.String("join", "", "aggregate remote tiptopd agents (comma-separated host:port list) instead of monitoring locally")
		storeDir   = fs.String("store", "", "durable history store directory: recover on boot, tee every sample, serve /api/v1/query")
		retention  = fs.Duration("retention", 0, "store age horizon, e.g. 72h (0 = bounded by the byte budget only)")
		budgetStr  = fs.String("budget", "", "store on-disk byte budget, e.g. 64MB (default 64MB)")
		fsyncStr   = fs.String("fsync", "", "store group-commit durability: off, an interval (2s), a record count (1000-records), or both comma-combined (default off)")
		compact    = fs.Duration("compact", 0, "compact the store into record format v2 at startup and then every period, e.g. 1h (0 = never)")
		wire       = fs.String("wire", "", "stream encoding used when dialing -join agents: json or binary (default json)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *delay <= 0 {
		return fmt.Errorf("refresh delay must be positive, got -d %v", *delay)
	}
	if *parallel < 0 {
		return fmt.Errorf("sampling shards cannot be negative, got -j %d", *parallel)
	}
	if *historyCap < 0 {
		return fmt.Errorf("history capacity cannot be negative, got -history %d", *historyCap)
	}
	if *window < 0 {
		return fmt.Errorf("rate window cannot be negative, got -window %v", *window)
	}
	if *counters < 0 {
		return fmt.Errorf("counter capacity cannot be negative, got -counters %d", *counters)
	}
	var budget int64
	if *budgetStr != "" {
		b, err := store.ParseBytes(*budgetStr)
		if err != nil {
			return fmt.Errorf("bad -budget: %w", err)
		}
		budget = b
	}
	fsync, err := store.ParseFsync(*fsyncStr)
	if err != nil {
		return fmt.Errorf("bad -fsync: %w", err)
	}
	if *compact < 0 {
		return fmt.Errorf("compaction period cannot be negative, got -compact %v", *compact)
	}

	cfg := tiptop.Config{
		Interval:    time.Duration(*delay * float64(time.Second)),
		Screen:      *screenName,
		SortBy:      *sortBy,
		User:        *user,
		Parallelism: *parallel,
		SystemWide:  *systemWide,
		Counters:    *counters,
	}
	if *confFile != "" {
		parsed, err := config.Load(*confFile)
		if err != nil {
			return err
		}
		if parsed.Options.Interval() > 0 {
			cfg.Interval = parsed.Options.Interval()
		}
		if parsed.Options.Sort != "" {
			cfg.SortBy = parsed.Options.Sort
		}
		if parsed.Options.Parallelism > 0 {
			cfg.Parallelism = parsed.Options.Parallelism
		}
		if parsed.Options.SystemWide {
			cfg.SystemWide = true
		}
		if parsed.Options.Counters > 0 {
			cfg.Counters = parsed.Options.Counters
		}
		// Like delay/sort/parallelism above (and cmd/tiptop), options
		// the config file sets override flags.
		if parsed.Options.History > 0 {
			*historyCap = parsed.Options.History
		}
		if parsed.Options.Listen != "" {
			*addr = parsed.Options.Listen
		}
		if parsed.Options.Join != "" {
			*join = parsed.Options.Join
		}
		if parsed.Options.Store != "" {
			*storeDir = parsed.Options.Store
		}
		if parsed.Options.Retention != "" {
			*retention = parsed.Options.RetentionValue()
		}
		if parsed.Options.Budget != "" {
			budget = parsed.Options.BudgetValue()
		}
		if parsed.Options.Fsync != "" {
			fsync = parsed.Options.FsyncValue()
		}
		if parsed.Options.Compact != "" {
			*compact = parsed.Options.CompactValue()
		}
		if parsed.Options.Wire != "" {
			*wire = parsed.Options.Wire
		}
		// Event and screen definitions translate to the facade, so a
		// daemon can sample (and stream) custom screens over
		// user-defined events.
		cfg.ApplyDefinitions(parsed)
	}
	cfg.StoreDir = *storeDir
	cfg.StoreRetention = *retention
	cfg.StoreBudget = budget
	cfg.StoreFsync = fsync
	cfg.StoreCompact = *compact
	if err := cfg.Validate(); err != nil {
		return err
	}
	switch *wire {
	case "", "json", "binary":
	default:
		return fmt.Errorf("unknown wire format %q, want -wire json or -wire binary", *wire)
	}
	if *join != "" {
		if *simName != "" {
			return fmt.Errorf("-join aggregates remote agents and cannot monitor -sim %s itself", *simName)
		}
		return runFleet(*join, *addr, *iterations, *historyCap, *window, *wire, cfg, stdout)
	}
	// A solo daemon always serves both encodings; -wire (and a shared
	// config's wire= attribute) only selects how -join dials agents.

	mon, pace, err := buildMonitor(*simName, *scale, cfg)
	if err != nil {
		return err
	}
	defer mon.Close()
	rec := tiptop.NewRecorder(tiptop.RecorderOptions{Capacity: *historyCap, Window: *window})
	mon.Subscribe(rec)
	var hist *tiptop.Store
	if cfg.StoreDir != "" {
		hist, err = tiptop.OpenStore(cfg.StoreDir, cfg.StoreOptions())
		if err != nil {
			return err
		}
		defer func() {
			if cerr := hist.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "tiptopd: store:", cerr)
			}
		}()
		rec.Tee(hist)
		fmt.Fprintf(stdout, "tiptopd: store %s: %d records recovered (%d bytes, history to t=%s)\n",
			cfg.StoreDir, hist.Records(), hist.DiskUsage(), hist.LastTime().Truncate(time.Second))
		if cfg.StoreCompact > 0 {
			// One pass over the recovered history now, then periodically:
			// long-running daemons keep their on-disk format at v2
			// density without an operator cron job.
			res, err := hist.Compact(tiptop.CompactOptions{})
			if err != nil {
				return fmt.Errorf("store compaction: %w", err)
			}
			fmt.Fprintf(stdout, "tiptopd: store compacted: %s\n", compactSummary(res))
			stopCompact := make(chan struct{})
			compactDone := make(chan struct{})
			go func() {
				defer close(compactDone)
				tick := time.NewTicker(cfg.StoreCompact)
				defer tick.Stop()
				for {
					select {
					case <-stopCompact:
						return
					case <-tick.C:
						// Appends and queries continue during the pass;
						// a failed pass is logged, not fatal — the store
						// keeps serving its current segments.
						if _, err := hist.Compact(tiptop.CompactOptions{}); err != nil {
							fmt.Fprintln(os.Stderr, "tiptopd: store compaction:", err)
						}
					}
				}
			}()
			defer func() { close(stopCompact); <-compactDone }()
		}
	}
	d := newDaemon(mon, rec, pace, hist)
	d.named = cfg.NamedExprs()
	defer d.srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "tiptopd: monitoring %s, serving http://%s/metrics\n", mon.Machine(), ln.Addr())

	srv := &http.Server{Handler: d.handler()}
	stop := make(chan struct{})
	loopDone := make(chan error, 1)
	go func() { loopDone <- d.loop(stop, *iterations) }()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	interrupted := make(chan os.Signal, 1)
	signal.Notify(interrupted, os.Interrupt)

	shutdown := func() {
		// Disconnect stream subscribers first: SSE handlers are active
		// requests Shutdown would otherwise wait out.
		d.srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-serveDone
	}
	select {
	case err := <-loopDone:
		// Finite -n run completed, the scenario drained, or sampling
		// failed: stop serving and report.
		shutdown()
		return err
	case err := <-serveDone:
		close(stop)
		<-loopDone
		return err
	case <-interrupted:
		close(stop)
		<-loopDone
		shutdown()
		return nil
	}
}

// buildMonitor selects the backend like cmd/tiptop: a named scenario,
// or the real machine with fallback to the simulated data-center node.
// The returned pace is the real-time pause between refreshes for
// simulated backends, whose Sample() advances virtual time instantly
// (the real backend sleeps inside Sample itself).
func buildMonitor(simName string, scale float64, cfg tiptop.Config) (*tiptop.Monitor, time.Duration, error) {
	if simName == "" {
		mon, err := tiptop.NewRealMonitor(cfg)
		if err == nil {
			return mon, 0, nil
		}
		fmt.Fprintf(os.Stderr, "tiptopd: %v; falling back to -sim datacenter\n", err)
		simName = "datacenter"
	}
	sc, err := tiptop.NewNamedScenario(simName, scale)
	if err != nil {
		return nil, 0, err
	}
	mon, err := tiptop.NewSimMonitor(sc, cfg)
	if err != nil {
		return nil, 0, err
	}
	return mon, mon.Interval(), nil
}

// daemon couples one monitor and its recorder to the HTTP handlers.
// The sampling loop is the only goroutine touching the monitor; the
// handlers read exclusively through the recorder (whose lock makes
// scrapes safe against the live sharded sampler) and the remote.Server
// caches the loop publishes into.
type daemon struct {
	mon  *tiptop.Monitor
	rec  *tiptop.Recorder
	pace time.Duration
	// srv owns the wire-protocol surface: the SSE stream hub, the
	// latest wire sample, and the per-refresh cached, ETag'd /metrics
	// body (one OpenMetrics encode per interval, however many scrapers).
	srv *remote.Server
	// hist is the durable store behind /api/v1/query, nil without
	// -store.
	hist *tiptop.Store
	// named maps stored expression names (config <expr> elements) to
	// their sources for /api/v1/query?expr=<name>.
	named map[string]string
}

// newDaemon wires a monitor and recorder to a wire-protocol server;
// hist (may be nil) adds the durable range-query surface.
func newDaemon(mon *tiptop.Monitor, rec *tiptop.Recorder, pace time.Duration, hist *tiptop.Store) *daemon {
	return &daemon{
		mon:  mon,
		rec:  rec,
		pace: pace,
		srv:  remote.NewServer(rec.WriteOpenMetrics),
		hist: hist,
	}
}

// publish converts one refresh to the wire format and hands it to the
// stream hub and caches — encoded once per refresh, shared by every
// subscriber and scraper. Store append errors (latched by the tee,
// which cannot return them) are surfaced here, once per refresh: a
// daemon whose durable history has stopped must fail loudly, not keep
// serving while the past silently goes missing.
func (d *daemon) publish(s *tiptop.Sample) error {
	if d.hist != nil {
		if err := d.hist.Err(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	return d.srv.Publish(d.mon.WireSample(s))
}

// loop drives the monitor: one attach pass, then n refreshes (n <= 0 =
// until stopped), publishing every sample to the wire surface.
func (d *daemon) loop(stop <-chan struct{}, n int) error {
	s, err := d.mon.SampleNow()
	if err != nil {
		return err
	}
	if err := d.publish(s); err != nil {
		return err
	}
	for i := 0; n <= 0 || i < n; i++ {
		select {
		case <-stop:
			return nil
		default:
		}
		s, err := d.mon.Sample()
		if err != nil {
			return err
		}
		if err := d.publish(s); err != nil {
			return err
		}
		if d.pace > 0 {
			select {
			case <-stop:
				return nil
			case <-time.After(d.pace):
			}
		}
	}
	return nil
}

func (d *daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", d.index)
	mux.HandleFunc("GET /api/v1/snapshot", d.snapshot)
	mux.HandleFunc("GET /api/v1/history", d.history)
	mux.HandleFunc("GET /api/v1/events", d.events)
	// With a store: raw and expression queries over durable history.
	// Without one, expression queries still run against the recorder's
	// live rings; only raw range queries need the store.
	mux.Handle("GET /api/v1/query", tiptop.NamedExprHandler(d.named, tiptop.QueryHandler(d.hist, d.rec)))
	// /metrics, /api/v1/sample and /api/v1/stream come from the wire
	// server (cached, ETag'd, fan-out).
	d.srv.Register(mux)
	return mux
}

func (d *daemon) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "tiptopd monitoring %s\n\n/metrics\n/api/v1/snapshot\n/api/v1/history?pid=N\n/api/v1/events\n/api/v1/sample\n/api/v1/stream\n", d.mon.Machine())
	fmt.Fprintf(w, "/api/v1/query?expr=&from=&to=&step=\n")
	if d.hist != nil {
		fmt.Fprintf(w, "/api/v1/query?pid=&from=&to=&step=\n")
	}
}

// events serves the daemon's event registry — defaults plus any
// -config <event> definitions — with the backend's support status, the
// per-event slot cost, the backend's counter capacity (0 = unlimited
// or kernel-multiplexed), and the set of events the session attaches,
// in deterministic name order.
func (d *daemon) events(w http.ResponseWriter, _ *http.Request) {
	backend, capacity := d.mon.BackendCapacity()
	writeJSON(w, http.StatusOK, struct {
		Backend  string             `json:"backend"`
		Capacity int                `json:"capacity"`
		Events   []tiptop.EventInfo `json:"events"`
	}{backend, capacity, d.mon.EventList()})
}

func (d *daemon) snapshot(w http.ResponseWriter, _ *http.Request) {
	// "machine_name": the embedded Snapshot already owns the "machine"
	// key for the machine-wide aggregate, and encoding/json silently
	// drops the deeper of two same-named fields.
	writeJSON(w, http.StatusOK, struct {
		MachineName     string  `json:"machine_name"`
		IntervalSeconds float64 `json:"interval_s"`
		*tiptop.Snapshot
	}{d.mon.Machine(), d.mon.Interval().Seconds(), d.rec.Snapshot()})
}

func (d *daemon) history(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("pid")
	if q == "" {
		writeJSON(w, http.StatusOK, struct {
			PIDs []int `json:"pids"`
		}{d.rec.PIDs()})
		return
	}
	pid, err := strconv.Atoi(q)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad pid %q", q))
		return
	}
	series := d.rec.History(pid)
	if series == nil {
		writeJSONError(w, http.StatusNotFound, fmt.Sprintf("pid %d was never observed", pid))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		PID    int                    `json:"pid"`
		Series []tiptop.HistorySeries `json:"series"`
	}{pid, series})
}

// compactSummary renders one compaction pass for the startup log line:
// total input segments and the byte ratio achieved across tiers.
func compactSummary(res *tiptop.CompactionResult) string {
	var segs int
	var before, after int64
	for _, t := range res.Tiers {
		segs += t.Segments
		before += t.BytesBefore
		after += t.BytesAfter
	}
	if segs == 0 {
		return "nothing to rewrite"
	}
	return fmt.Sprintf("%d segments rewritten, %d -> %d bytes", segs, before, after)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{msg})
}
