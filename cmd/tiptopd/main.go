// Command tiptopd runs a tiptop monitor as a daemon: the engine samples
// continuously (real machine or a simulated scenario), a Recorder keeps
// per-task history and roll-up aggregates, and an HTTP server exports
// them to other tools — the serving layer the paper's interactive tool
// stops short of.
//
// Endpoints:
//
//	/metrics                OpenMetrics / Prometheus text exposition
//	/api/v1/snapshot        latest refresh + aggregates, JSON
//	/api/v1/history?pid=N   recorded time series of one process, JSON
//	/api/v1/history         recorded PIDs, JSON
//
// Usage:
//
//	tiptopd                        monitor the real machine on :9412
//	tiptopd -sim datacenter        serve the Figure 1 grid node
//	tiptopd -addr :8080 -d 1       custom listen address and cadence
//	tiptopd -history 1800 -n 100   deeper rings, exit after 100 refreshes
//	tiptopd -config f.xml          options (delay, sort, listen, ...) from XML
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"time"

	"tiptop"
	"tiptop/internal/config"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tiptopd:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tiptopd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":9412", "HTTP listen address")
		delay      = fs.Float64("d", 2, "delay between refreshes, seconds")
		iterations = fs.Int("n", 0, "number of refreshes to serve (0 = until interrupted)")
		screenName = fs.String("screen", "default", "screen: default, branch, fp, mem, lat, roofline")
		sortBy     = fs.String("sort", "cpu", "sort key: cpu, pid, or a column name")
		user       = fs.String("u", "", "only monitor this user's tasks")
		parallel   = fs.Int("j", 0, "sampling shards (0 = one per CPU, 1 = serial)")
		simName    = fs.String("sim", "", "monitor a simulated scenario: spec, revolution, conflict, datacenter")
		scale      = fs.Float64("scale", 0.01, "workload scale for simulated scenarios")
		historyCap = fs.Int("history", 0, "points retained per task (0 = default 600)")
		window     = fs.Duration("window", 0, "windowed-rate horizon, capped at 128 refreshes (0 = default 1m)")
		confFile   = fs.String("config", "", "load options from an XML configuration file (set options override flags)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *delay <= 0 {
		return fmt.Errorf("refresh delay must be positive, got -d %v", *delay)
	}
	if *parallel < 0 {
		return fmt.Errorf("sampling shards cannot be negative, got -j %d", *parallel)
	}
	if *historyCap < 0 {
		return fmt.Errorf("history capacity cannot be negative, got -history %d", *historyCap)
	}
	if *window < 0 {
		return fmt.Errorf("rate window cannot be negative, got -window %v", *window)
	}

	cfg := tiptop.Config{
		Interval:    time.Duration(*delay * float64(time.Second)),
		Screen:      *screenName,
		SortBy:      *sortBy,
		User:        *user,
		Parallelism: *parallel,
	}
	if *confFile != "" {
		parsed, err := config.Load(*confFile)
		if err != nil {
			return err
		}
		if parsed.Options.Interval() > 0 {
			cfg.Interval = parsed.Options.Interval()
		}
		if parsed.Options.Sort != "" {
			cfg.SortBy = parsed.Options.Sort
		}
		if parsed.Options.Parallelism > 0 {
			cfg.Parallelism = parsed.Options.Parallelism
		}
		// Like delay/sort/parallelism above (and cmd/tiptop), options
		// the config file sets override flags.
		if parsed.Options.History > 0 {
			*historyCap = parsed.Options.History
		}
		if parsed.Options.Listen != "" {
			*addr = parsed.Options.Listen
		}
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	mon, pace, err := buildMonitor(*simName, *scale, cfg)
	if err != nil {
		return err
	}
	defer mon.Close()
	rec := tiptop.NewRecorder(tiptop.RecorderOptions{Capacity: *historyCap, Window: *window})
	mon.Subscribe(rec)
	d := &daemon{mon: mon, rec: rec, pace: pace}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "tiptopd: monitoring %s, serving http://%s/metrics\n", mon.Machine(), ln.Addr())

	srv := &http.Server{Handler: d.handler()}
	stop := make(chan struct{})
	loopDone := make(chan error, 1)
	go func() { loopDone <- d.loop(stop, *iterations) }()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	interrupted := make(chan os.Signal, 1)
	signal.Notify(interrupted, os.Interrupt)

	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-serveDone
	}
	select {
	case err := <-loopDone:
		// Finite -n run completed, the scenario drained, or sampling
		// failed: stop serving and report.
		shutdown()
		return err
	case err := <-serveDone:
		close(stop)
		<-loopDone
		return err
	case <-interrupted:
		close(stop)
		<-loopDone
		shutdown()
		return nil
	}
}

// buildMonitor selects the backend like cmd/tiptop: a named scenario,
// or the real machine with fallback to the simulated data-center node.
// The returned pace is the real-time pause between refreshes for
// simulated backends, whose Sample() advances virtual time instantly
// (the real backend sleeps inside Sample itself).
func buildMonitor(simName string, scale float64, cfg tiptop.Config) (*tiptop.Monitor, time.Duration, error) {
	if simName == "" {
		mon, err := tiptop.NewRealMonitor(cfg)
		if err == nil {
			return mon, 0, nil
		}
		fmt.Fprintf(os.Stderr, "tiptopd: %v; falling back to -sim datacenter\n", err)
		simName = "datacenter"
	}
	sc, err := tiptop.NewNamedScenario(simName, scale)
	if err != nil {
		return nil, 0, err
	}
	mon, err := tiptop.NewSimMonitor(sc, cfg)
	if err != nil {
		return nil, 0, err
	}
	return mon, mon.Interval(), nil
}

// daemon couples one monitor and its recorder to the HTTP handlers.
// The sampling loop is the only goroutine touching the monitor; the
// handlers read exclusively through the recorder, whose lock makes
// scrapes safe against the live sharded sampler.
type daemon struct {
	mon  *tiptop.Monitor
	rec  *tiptop.Recorder
	pace time.Duration
}

// loop drives the monitor: one attach pass, then n refreshes (n <= 0 =
// until stopped).
func (d *daemon) loop(stop <-chan struct{}, n int) error {
	if _, err := d.mon.SampleNow(); err != nil {
		return err
	}
	for i := 0; n <= 0 || i < n; i++ {
		select {
		case <-stop:
			return nil
		default:
		}
		if _, err := d.mon.Sample(); err != nil {
			return err
		}
		if d.pace > 0 {
			select {
			case <-stop:
				return nil
			case <-time.After(d.pace):
			}
		}
	}
	return nil
}

func (d *daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", d.index)
	mux.HandleFunc("GET /metrics", d.metrics)
	mux.HandleFunc("GET /api/v1/snapshot", d.snapshot)
	mux.HandleFunc("GET /api/v1/history", d.history)
	return mux
}

func (d *daemon) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "tiptopd monitoring %s\n\n/metrics\n/api/v1/snapshot\n/api/v1/history?pid=N\n", d.mon.Machine())
}

func (d *daemon) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := d.rec.WriteOpenMetrics(w); err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
}

func (d *daemon) snapshot(w http.ResponseWriter, _ *http.Request) {
	// "machine_name": the embedded Snapshot already owns the "machine"
	// key for the machine-wide aggregate, and encoding/json silently
	// drops the deeper of two same-named fields.
	writeJSON(w, http.StatusOK, struct {
		MachineName     string  `json:"machine_name"`
		IntervalSeconds float64 `json:"interval_s"`
		*tiptop.Snapshot
	}{d.mon.Machine(), d.mon.Interval().Seconds(), d.rec.Snapshot()})
}

func (d *daemon) history(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("pid")
	if q == "" {
		writeJSON(w, http.StatusOK, struct {
			PIDs []int `json:"pids"`
		}{d.rec.PIDs()})
		return
	}
	pid, err := strconv.Atoi(q)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad pid %q", q))
		return
	}
	series := d.rec.History(pid)
	if series == nil {
		writeJSONError(w, http.StatusNotFound, fmt.Sprintf("pid %d was never observed", pid))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		PID    int                    `json:"pid"`
		Series []tiptop.HistorySeries `json:"series"`
	}{pid, series})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{msg})
}
