package main

// End-to-end coverage of the wire surface: a RemoteMonitor against a
// live httptest tiptopd must reproduce the local monitor byte-for-byte,
// and the cached /metrics must honor ETag revalidation.

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tiptop"
)

// twinMonitor builds one of two identically seeded sim monitors.
func twinMonitor(t *testing.T) *tiptop.Monitor {
	t.Helper()
	sc, err := tiptop.NewNamedScenario("datacenter", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := tiptop.NewSimMonitor(sc, tiptop.Config{Interval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return mon
}

// sameRows compares public samples field by field. Start travels the
// wire as float seconds, so it is compared with a nanosecond-scale
// tolerance instead of bit equality.
func sameRows(t *testing.T, step int, local, remote *tiptop.Sample) {
	t.Helper()
	if local.Time != remote.Time {
		t.Fatalf("step %d: time %v != %v", step, local.Time, remote.Time)
	}
	if len(local.Rows) != len(remote.Rows) {
		t.Fatalf("step %d: %d rows != %d rows", step, len(local.Rows), len(remote.Rows))
	}
	for i := range local.Rows {
		l, r := local.Rows[i], remote.Rows[i]
		if l.PID != r.PID || l.TID != r.TID || l.User != r.User || l.Command != r.Command ||
			l.State != r.State || l.CPUPct != r.CPUPct || l.IPC != r.IPC || l.Monitored != r.Monitored {
			t.Fatalf("step %d row %d:\nlocal  %+v\nremote %+v", step, i, l, r)
		}
		if len(l.Columns) != len(r.Columns) {
			t.Fatalf("step %d row %d: column counts differ", step, i)
		}
		for j := range l.Columns {
			if l.Columns[j] != r.Columns[j] {
				t.Fatalf("step %d row %d col %d: %v != %v", step, i, j, l.Columns[j], r.Columns[j])
			}
		}
		for e, v := range l.Events {
			if r.Events[e] != v {
				t.Fatalf("step %d row %d event %s: %d != %d", step, i, e, v, r.Events[e])
			}
		}
		if math.Abs(l.Start.Seconds()-r.Start.Seconds()) > 1e-6 {
			t.Fatalf("step %d row %d: start %v != %v", step, i, l.Start, r.Start)
		}
	}
}

// TestRemoteMonitorByteIdentical drives a local monitor and a
// RemoteMonitor over a twin daemon through the same refreshes: the
// converted samples must match and the rendered batch blocks must be
// byte-identical — the acceptance contract of `tiptop -connect`.
func TestRemoteMonitorByteIdentical(t *testing.T) {
	local := twinMonitor(t)
	defer local.Close()
	served := twinMonitor(t)
	rec := tiptop.NewRecorder(tiptop.RecorderOptions{Capacity: 32})
	served.Subscribe(rec)
	d := newDaemon(served, rec, 0, nil)
	ts := httptest.NewServer(d.handler())
	defer ts.Close()
	defer d.srv.Close()
	defer served.Close()

	ls, err := local.SampleNow()
	if err != nil {
		t.Fatal(err)
	}
	ss, err := served.SampleNow()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.publish(ss); err != nil {
		t.Fatal(err)
	}

	rm, err := tiptop.NewRemoteMonitor(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer rm.Close()
	if got, want := rm.Interval(), local.Interval(); got != want {
		t.Fatalf("remote interval %v != %v", got, want)
	}
	if !strings.Contains(rm.Machine(), local.Machine()) {
		t.Fatalf("remote machine %q does not carry %q", rm.Machine(), local.Machine())
	}
	for i, h := range local.Headers() {
		if rm.Headers()[i] != h {
			t.Fatalf("headers differ: %v vs %v", rm.Headers(), local.Headers())
		}
	}
	for i, c := range local.Columns() {
		if rm.Columns()[i] != c {
			t.Fatalf("columns differ: %v vs %v", rm.Columns(), local.Columns())
		}
	}

	// A remote recorder fed from converted samples, like a local one.
	remoteRec := tiptop.NewRecorder(tiptop.RecorderOptions{Capacity: 32})
	rm.Subscribe(remoteRec)

	rs, err := rm.SampleNow()
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, 0, ls, rs)

	for step := 1; step <= 4; step++ {
		ls, err = local.Sample()
		if err != nil {
			t.Fatal(err)
		}
		ss, err = served.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if err := d.publish(ss); err != nil {
			t.Fatal(err)
		}
		rs, err = rm.Sample()
		if err != nil {
			t.Fatal(err)
		}
		sameRows(t, step, ls, rs)

		var lb, rb bytes.Buffer
		if err := local.Render(&lb, ls); err != nil {
			t.Fatal(err)
		}
		if err := rm.Render(&rb, rs); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(lb.Bytes(), rb.Bytes()) {
			t.Fatalf("step %d renders differ:\nlocal:\n%s\nremote:\n%s", step, lb.String(), rb.String())
		}
	}

	// The subscribed remote recorder saw every converted refresh.
	if snap := remoteRec.Snapshot(); snap.Refreshes != 5 || snap.Machine.Tasks != 11 {
		t.Fatalf("remote recorder snapshot = refreshes %d tasks %d", snap.Refreshes, snap.Machine.Tasks)
	}
}

// TestDaemonMetricsETag: the cached /metrics revalidates with ETags —
// unchanged refresh version means a bodyless 304, a new refresh a new
// body — and /api/v1/sample serves the latest wire sample.
func TestDaemonMetricsETag(t *testing.T) {
	served := twinMonitor(t)
	rec := tiptop.NewRecorder(tiptop.RecorderOptions{Capacity: 32})
	served.Subscribe(rec)
	d := newDaemon(served, rec, 0, nil)
	ts := httptest.NewServer(d.handler())
	defer ts.Close()
	defer d.srv.Close()
	defer served.Close()

	s, err := served.SampleNow()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.publish(s); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if resp.StatusCode != http.StatusOK || etag == "" || !strings.Contains(string(body), "tiptop_tasks 11") {
		t.Fatalf("/metrics status=%d etag=%q", resp.StatusCode, etag)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified || len(b) != 0 {
		t.Fatalf("revalidation = %d with %d bytes", resp.StatusCode, len(b))
	}

	// A new refresh invalidates the ETag.
	if s, err = served.Sample(); err != nil {
		t.Fatal(err)
	}
	if err := d.publish(s); err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("ETag") == etag {
		t.Fatalf("post-refresh revalidation = %d etag=%q (old %q)", resp.StatusCode, resp.Header.Get("ETag"), etag)
	}

	// The wire sample endpoint carries the daemon's machine and rows.
	status, sampleBody := get(t, ts.URL+"/api/v1/sample")
	if status != http.StatusOK || !strings.Contains(sampleBody, `"machine"`) || !strings.Contains(sampleBody, `"rows"`) {
		t.Fatalf("/api/v1/sample = %d %q", status, sampleBody[:min(len(sampleBody), 120)])
	}
}
