package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"tiptop"
)

// testDaemon builds a daemon over a fast simulated datacenter scenario
// and starts its sampling loop.
func testDaemon(t *testing.T) (*daemon, *httptest.Server) {
	t.Helper()
	sc, err := tiptop.NewNamedScenario("datacenter", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := tiptop.NewSimMonitor(sc, tiptop.Config{Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rec := tiptop.NewRecorder(tiptop.RecorderOptions{Capacity: 64, Window: time.Second})
	mon.Subscribe(rec)
	d := newDaemon(mon, rec, time.Millisecond, nil)

	stop := make(chan struct{})
	loopDone := make(chan error, 1)
	go func() { loopDone <- d.loop(stop, 0) }()
	srv := httptest.NewServer(d.handler())
	t.Cleanup(func() {
		d.srv.Close()
		srv.Close()
		close(stop)
		if err := <-loopDone; err != nil {
			t.Errorf("sampling loop: %v", err)
		}
		mon.Close()
	})

	// Wait until the first refreshes landed.
	deadline := time.Now().Add(5 * time.Second)
	for rec.Snapshot().Refreshes < 2 {
		if time.Now().After(deadline) {
			t.Fatal("sampling loop produced no refreshes")
		}
		time.Sleep(time.Millisecond)
	}
	return d, srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestDaemonEndToEndConcurrentScrapers is the subsystem's acceptance
// test: a live simulated scenario behind the daemon, hammered by many
// concurrent scrapers across all endpoints while the sharded sampler
// keeps refreshing. Run under -race it doubles as the concurrency
// regression suite.
func TestDaemonEndToEndConcurrentScrapers(t *testing.T) {
	d, srv := testDaemon(t)
	pids := d.rec.PIDs()
	if len(pids) != 11 {
		t.Fatalf("pids = %v, want the 11 Figure 1 processes", pids)
	}

	const scrapers = 10
	const rounds = 25
	var wg sync.WaitGroup
	errs := make(chan error, scrapers*rounds)
	for i := 0; i < scrapers; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for n := 0; n < rounds; n++ {
				var url string
				switch (worker + n) % 3 {
				case 0:
					url = srv.URL + "/metrics"
				case 1:
					url = srv.URL + "/api/v1/snapshot"
				default:
					url = fmt.Sprintf("%s/api/v1/history?pid=%d", srv.URL, pids[n%len(pids)])
				}
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					continue
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d", url, resp.StatusCode)
				}
				if len(body) == 0 {
					errs <- fmt.Errorf("%s: empty body", url)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The endpoints carry what they claim while sampling continues.
	status, metrics := get(t, srv.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status = %d", status)
	}
	for _, want := range []string{
		"tiptop_tasks 11",
		`tiptop_user_tasks{user="user1"} 8`,
		"tiptop_machine_instructions_total",
		"# EOF",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	_, snapBody := get(t, srv.URL+"/api/v1/snapshot")
	var snap struct {
		MachineName string `json:"machine_name"`
		Refreshes   uint64 `json:"refreshes"`
		Machine     struct {
			Tasks        int     `json:"tasks"`
			IPC          float64 `json:"ipc"`
			Instructions uint64  `json:"instructions_total"`
		} `json:"machine"`
		Tasks []struct {
			PID     int     `json:"pid"`
			Command string  `json:"command"`
			IPC     float64 `json:"ipc"`
		} `json:"tasks"`
	}
	if err := json.Unmarshal([]byte(snapBody), &snap); err != nil {
		t.Fatalf("snapshot JSON: %v\n%s", err, snapBody)
	}
	if len(snap.Tasks) != 11 || snap.Refreshes < 2 || !strings.Contains(snap.MachineName, "E5640") {
		t.Fatalf("snapshot = %+v", snap)
	}
	// The machine-wide aggregate must survive the JSON embedding.
	if snap.Machine.Tasks != 11 || snap.Machine.IPC <= 0 || snap.Machine.Instructions == 0 {
		t.Fatalf("machine aggregate lost in snapshot: %+v", snap.Machine)
	}

	_, histBody := get(t, fmt.Sprintf("%s/api/v1/history?pid=%d", srv.URL, pids[0]))
	var hist struct {
		PID    int `json:"pid"`
		Series []struct {
			Command string `json:"command"`
			Points  []struct {
				TimeSeconds float64 `json:"time_s"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(histBody), &hist); err != nil {
		t.Fatalf("history JSON: %v\n%s", err, histBody)
	}
	if len(hist.Series) != 1 || len(hist.Series[0].Points) < 2 {
		t.Fatalf("history = %+v", hist)
	}
}

func TestDaemonHistoryErrors(t *testing.T) {
	_, srv := testDaemon(t)
	if status, _ := get(t, srv.URL+"/api/v1/history?pid=999999"); status != http.StatusNotFound {
		t.Fatalf("unknown pid status = %d, want 404", status)
	}
	if status, _ := get(t, srv.URL+"/api/v1/history?pid=abc"); status != http.StatusBadRequest {
		t.Fatalf("bad pid status = %d, want 400", status)
	}
	status, body := get(t, srv.URL+"/api/v1/history")
	if status != http.StatusOK || !strings.Contains(body, "pids") {
		t.Fatalf("pid listing = %d %q", status, body)
	}
	if status, _ := get(t, srv.URL+"/api/v1/nope"); status != http.StatusNotFound {
		t.Fatalf("unknown endpoint status = %d, want 404", status)
	}
}

// TestRunFiniteServe drives the real run() for a bounded number of
// refreshes on an ephemeral port.
func TestRunFiniteServe(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-sim", "datacenter", "-addr", "127.0.0.1:0",
		"-d", "0.01", "-n", "5", "-scale", "0.01",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "serving http://") {
		t.Fatalf("stdout = %q", sb.String())
	}
}

func TestRunFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-d", "0"},
		{"-d", "-1"},
		{"-j", "-2"},
		{"-history", "-5"},
		{"-window", "-30s"},
		{"-sort", "bogus", "-sim", "spec"},
		{"-screen", "bogus", "-sim", "spec"},
		{"-sim", "wargames"},
		{"-bogusflag"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("args %v must fail", args)
		}
	}
}

// TestDaemonSystemWideEndToEnd: a system-wide (per-CPU) simulated
// monitor behind the full daemon, with a durable store teed in. The
// per-CPU rows must surface on /metrics as cpuN tasks and round-trip
// through the store-backed /api/v1/query?expr= endpoint.
func TestDaemonSystemWideEndToEnd(t *testing.T) {
	sc, err := tiptop.NewNamedScenario("steady", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := tiptop.NewSimMonitor(sc, tiptop.Config{
		Interval:   10 * time.Millisecond,
		SystemWide: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := tiptop.NewRecorder(tiptop.RecorderOptions{Capacity: 64, Window: time.Second})
	mon.Subscribe(rec)
	hist, err := tiptop.OpenStore(t.TempDir(), tiptop.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec.Tee(hist)
	d := newDaemon(mon, rec, time.Millisecond, hist)

	stop := make(chan struct{})
	loopDone := make(chan error, 1)
	go func() { loopDone <- d.loop(stop, 0) }()
	srv := httptest.NewServer(d.handler())
	t.Cleanup(func() {
		d.srv.Close()
		srv.Close()
		close(stop)
		if err := <-loopDone; err != nil {
			t.Errorf("sampling loop: %v", err)
		}
		mon.Close()
		if err := hist.Close(); err != nil {
			t.Errorf("store close: %v", err)
		}
	})
	deadline := time.Now().Add(5 * time.Second)
	for rec.Snapshot().Refreshes < 4 {
		if time.Now().After(deadline) {
			t.Fatal("sampling loop produced no refreshes")
		}
		time.Sleep(time.Millisecond)
	}

	// The scrape carries one task per logical CPU of the A7.
	_, metrics := get(t, srv.URL+"/metrics")
	for cpu := 0; cpu < 4; cpu++ {
		want := fmt.Sprintf("command=%q", fmt.Sprintf("cpu%d", cpu))
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing per-CPU task %s", want)
		}
	}
	if !strings.Contains(metrics, "tiptop_task_coverage") {
		t.Error("/metrics missing the coverage gauge family")
	}

	// Store-backed expression query over the recorded per-CPU history.
	status, body := get(t, srv.URL+"/api/v1/query?expr=rate(CYCLES)")
	if status != http.StatusOK {
		t.Fatalf("query status = %d: %s", status, body)
	}
	var res struct {
		Series []struct {
			Command string `json:"command"`
			Points  []struct {
				Value float64 `json:"value"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatalf("query JSON: %v\n%s", err, body)
	}
	cpus := map[string]bool{}
	for _, s := range res.Series {
		if strings.HasPrefix(s.Command, "cpu") && len(s.Points) > 0 {
			cpus[s.Command] = true
		}
	}
	for cpu := 0; cpu < 4; cpu++ {
		if name := fmt.Sprintf("cpu%d", cpu); !cpus[name] {
			t.Errorf("query result missing series for %s (got %v)", name, cpus)
		}
	}
}

// TestDaemonEventsEndpoint: /api/v1/events serves the registry in
// deterministic name order with the sim backend's support status and
// the attached set of the default screen.
func TestDaemonEventsEndpoint(t *testing.T) {
	_, srv := testDaemon(t)
	get := func() []tiptop.EventInfo {
		resp, err := http.Get(srv.URL + "/api/v1/events")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		var body struct {
			Events []tiptop.EventInfo `json:"events"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body.Events
	}
	events := get()
	if len(events) != 15 {
		t.Fatalf("events = %d, want the 15 defaults", len(events))
	}
	byName := map[string]tiptop.EventInfo{}
	for i, e := range events {
		byName[e.Name] = e
		if i > 0 && events[i-1].Name >= e.Name {
			t.Fatalf("events not sorted by name: %q before %q", events[i-1].Name, e.Name)
		}
	}
	cycles := byName["CYCLES"]
	if !cycles.Supported["sim"] || !cycles.Attached || cycles.Kind != "generic" {
		t.Fatalf("CYCLES = %+v", cycles)
	}
	// The default screen does not reference branches; the event is
	// supported but unattached.
	branches := byName["BRANCHES"]
	if !branches.Supported["sim"] || branches.Attached {
		t.Fatalf("BRANCHES = %+v", branches)
	}
	// Deterministic across requests.
	again := get()
	if !reflect.DeepEqual(events, again) {
		t.Fatal("events listing changed between requests")
	}
}
