package main

// End-to-end coverage of -store: the durable history behind
// /api/v1/query must span daemon restarts — proven twice, against the
// in-process daemon (httptest) and against the real binary restarted
// mid-run — plus the fleet aggregator's per-agent stores and the
// OpenMetrics query variant.

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tiptop"
	"tiptop/internal/core"
	"tiptop/internal/history"
	"tiptop/internal/remote"
	"tiptop/internal/store"
)

// bootDaemon starts one daemon "boot" over the datacenter scenario with
// a store in dir. Returns the daemon, its HTTP server and a shutdown
// function (which also closes the store, like a real exit).
func bootDaemon(t *testing.T, dir string) (*daemon, *httptest.Server, func()) {
	t.Helper()
	sc, err := tiptop.NewNamedScenario("datacenter", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := tiptop.NewSimMonitor(sc, tiptop.Config{Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rec := tiptop.NewRecorder(tiptop.RecorderOptions{Capacity: 64, Window: time.Second})
	mon.Subscribe(rec)
	st, err := tiptop.OpenStore(dir, tiptop.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec.Tee(st)
	d := newDaemon(mon, rec, time.Millisecond, st)
	ts := httptest.NewServer(d.handler())
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- d.loop(stop, 0) }()
	shutdown := func() {
		close(stop)
		if err := <-done; err != nil {
			t.Errorf("sampling loop: %v", err)
		}
		d.srv.Close()
		ts.Close()
		mon.Close()
		if err := st.Err(); err != nil {
			t.Errorf("store append: %v", err)
		}
		if err := st.Close(); err != nil {
			t.Errorf("store close: %v", err)
		}
	}
	return d, ts, shutdown
}

// TestStoreQueryAcrossRestart is the tentpole acceptance test (httptest
// half): a daemon records into -store, shuts down, a second daemon
// recovers the same directory, and /api/v1/query serves one continuous
// history spanning both boots.
func TestStoreQueryAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	d1, _, shutdown1 := bootDaemon(t, dir)
	waitUntil(t, "first boot to record", func() bool { return d1.hist.Records() >= 20 })
	shutdown1()

	st, err := tiptop.OpenStore(dir, tiptop.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	boundary := st.LastTime().Seconds()
	if boundary <= 0 {
		t.Fatal("first boot left no history")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	d2, ts, shutdown2 := bootDaemon(t, dir)
	defer shutdown2()
	waitUntil(t, "second boot to record past the restart", func() bool {
		return d2.hist.LastTime().Seconds() > boundary+0.05
	})

	qc, err := tiptop.NewQueryClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	res, err := qc.Query(tiptop.StoreQuery{PID: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) == 0 || len(res.Machine) == 0 {
		t.Fatalf("empty query result: %+v", res)
	}
	var before, after int
	for _, p := range res.Machine {
		if p.TimeSeconds <= boundary {
			before++
		} else {
			after++
		}
	}
	if before == 0 || after == 0 {
		t.Fatalf("history does not span the restart: %d points before t=%g, %d after", before, boundary, after)
	}
	// Per-task series must also be continuous across the boundary, and
	// strictly time-ordered (the monotonic store clock).
	spanned := false
	for _, s := range res.Series {
		var b, a int
		for i, p := range s.Points {
			if i > 0 && p.TimeSeconds <= s.Points[i-1].TimeSeconds {
				t.Fatalf("pid %d: time not monotonic at point %d", s.PID, i)
			}
			if p.TimeSeconds <= boundary {
				b++
			} else {
				a++
			}
		}
		if b > 0 && a > 0 {
			spanned = true
		}
	}
	if !spanned {
		t.Fatal("no task series spans the restart")
	}

	// The range filter must respect the boundary.
	res, err = qc.Query(tiptop.StoreQuery{PID: -1, ToSeconds: boundary})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Machine {
		if p.TimeSeconds > boundary {
			t.Fatalf("to=%g returned a point at t=%g", boundary, p.TimeSeconds)
		}
	}
}

// TestStoreRealProcessRestart is the other half of the acceptance test:
// the actual tiptopd binary, restarted between runs, serves range
// queries spanning the restart.
func TestStoreRealProcessRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := filepath.Join(t.TempDir(), "tiptopd.bin")
	if out, err := exec.Command("go", "build", "-o", bin, "tiptop/cmd/tiptopd").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dir := t.TempDir()

	// First run: finite, records and exits.
	run1 := exec.Command(bin, "-sim", "datacenter", "-d", "0.02", "-n", "20",
		"-addr", "127.0.0.1:0", "-store", dir)
	if out, err := run1.CombinedOutput(); err != nil {
		t.Fatalf("first run: %v\n%s", err, out)
	}

	st, err := tiptop.OpenStore(dir, tiptop.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	boundary := st.LastTime().Seconds()
	if st.Records() == 0 || boundary <= 0 {
		t.Fatalf("first run recorded nothing (records=%d, last=%g)", st.Records(), boundary)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Second run: serve until interrupted; find its address on stdout.
	run2 := exec.Command(bin, "-sim", "datacenter", "-d", "0.02",
		"-addr", "127.0.0.1:0", "-store", dir)
	stdout, err := run2.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	run2.Stderr = os.Stderr
	if err := run2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = run2.Process.Signal(os.Interrupt)
		_ = run2.Wait()
	}()
	var addr string
	scanner := bufio.NewScanner(stdout)
	for scanner.Scan() {
		line := scanner.Text()
		if i := strings.Index(line, "serving http://"); i >= 0 {
			addr = strings.TrimSuffix(line[i+len("serving http://"):], "/metrics")
			break
		}
	}
	if addr == "" {
		t.Fatalf("no serving address on stdout (scan err: %v)", scanner.Err())
	}

	qc, err := tiptop.NewQueryClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		res, err := qc.Query(tiptop.StoreQuery{PID: -1})
		if err == nil && len(res.Machine) > 0 &&
			res.Machine[len(res.Machine)-1].TimeSeconds > boundary+0.05 {
			var before int
			for _, p := range res.Machine {
				if p.TimeSeconds <= boundary {
					before++
				}
			}
			if before == 0 {
				t.Fatalf("restarted binary lost pre-restart history (boundary t=%g)", boundary)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("query never spanned the restart (last err: %v)", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestStoreQueryOpenMetricsVariant(t *testing.T) {
	dir := t.TempDir()
	d, ts, shutdown := bootDaemon(t, dir)
	defer shutdown()
	waitUntil(t, "records", func() bool { return d.hist.Records() >= 5 })

	resp, err := http.Get(ts.URL + "/api/v1/query?format=openmetrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("content type %q, want application/openmetrics-text (the export carries OpenMetrics 1.0 timestamps)", ct)
	}
	status, body := get(t, ts.URL+"/api/v1/query?format=openmetrics")
	if status != http.StatusOK {
		t.Fatalf("HTTP %d: %s", status, body)
	}
	for _, want := range []string{
		"# TYPE tiptop_range_machine_ipc gauge",
		"tiptop_range_cpu_pct{pid=",
		"# EOF",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("OpenMetrics body missing %q:\n%s", want, body)
		}
	}

	status, body = get(t, ts.URL+"/api/v1/query?format=nonsense")
	if status != http.StatusBadRequest {
		t.Fatalf("bad format got HTTP %d: %s", status, body)
	}
	status, body = get(t, ts.URL+"/api/v1/query?pid=banana")
	if status != http.StatusBadRequest {
		t.Fatalf("bad pid got HTTP %d: %s", status, body)
	}
}

// TestQueryWithoutStore: a daemon without -store answers the endpoint
// with a clear 404 instead of a blank one.
func TestQueryWithoutStore(t *testing.T) {
	_, srv := testDaemon(t)
	status, body := get(t, srv.URL+"/api/v1/query")
	if status != http.StatusNotFound || !strings.Contains(body, "-store") {
		t.Fatalf("got HTTP %d: %s", status, body)
	}
}

// TestFleetPerAgentDurableStores: a -join -store aggregator persists
// each agent's stream into its own store and routes /api/v1/query by
// the agent selector.
func TestFleetPerAgentDurableStores(t *testing.T) {
	agents := []*agent{startAgent(t, "datacenter"), startAgent(t, "spec")}
	defer func() {
		for _, a := range agents {
			a.close(t)
		}
	}()
	base := t.TempDir()
	stores := map[string]*store.Store{}
	urls := make([]string, len(agents))
	for i, a := range agents {
		urls[i] = a.ts.URL
	}
	fleet, err := remote.NewFleet(urls, remote.FleetOptions{
		History:        history.Options{Capacity: 64, Window: time.Second},
		ReconnectDelay: 10 * time.Millisecond,
		Tee: func(label string) (core.Observer, error) {
			st, err := store.Open(agentStoreDir(base, label), store.Options{})
			if err != nil {
				return nil, err
			}
			stores[label] = st
			return st, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	fleet.Start(ctx)
	fd := newFleetDaemon(fleet, stores)
	ts := httptest.NewServer(fd.handler())
	defer func() {
		fleet.Close()
		ts.Close()
		cancel()
		fleet.Wait()
		for _, st := range stores {
			if err := st.Close(); err != nil {
				t.Errorf("store close: %v", err)
			}
		}
	}()

	if len(stores) != 2 {
		t.Fatalf("expected one store per agent, got %d", len(stores))
	}
	for label, st := range stores {
		st := st
		waitUntil(t, "store of "+label, func() bool { return st.Records() >= 5 })
	}

	for label := range stores {
		status, body := get(t, ts.URL+"/api/v1/query?agent="+url.QueryEscape(label))
		if status != http.StatusOK {
			t.Fatalf("agent %s: HTTP %d: %s", label, status, body)
		}
		if !strings.Contains(body, `"series"`) || !strings.Contains(body, `"points"`) {
			t.Fatalf("agent %s: no series in %s", label, body)
		}
	}
	// Ambiguous selector with two agents.
	status, body := get(t, ts.URL+"/api/v1/query")
	if status != http.StatusBadRequest || !strings.Contains(body, "agent=") {
		t.Fatalf("missing agent selector got HTTP %d: %s", status, body)
	}
	status, body = get(t, ts.URL+"/api/v1/query?agent=nope")
	if status != http.StatusBadRequest {
		t.Fatalf("unknown agent got HTTP %d: %s", status, body)
	}
}

// TestFleetStoreDirCollision: two agent labels that sanitize to the
// same store directory must be rejected, not silently share segments.
func TestFleetStoreDirCollision(t *testing.T) {
	base := t.TempDir()
	cfg := tiptop.Config{StoreDir: base}
	err := runFleet("host:9412,host_9412", "127.0.0.1:0", 1, 0, 0, "", cfg, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "same store directory") {
		t.Fatalf("colliding labels accepted: %v", err)
	}
}

// TestLoopSurfacesStoreError: when durable appends start failing, the
// sampling loop must stop with an error instead of serving on while
// history silently goes missing.
func TestLoopSurfacesStoreError(t *testing.T) {
	sc, err := tiptop.NewNamedScenario("datacenter", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := tiptop.NewSimMonitor(sc, tiptop.Config{Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	rec := tiptop.NewRecorder(tiptop.RecorderOptions{Capacity: 16})
	mon.Subscribe(rec)
	st, err := tiptop.OpenStore(t.TempDir(), tiptop.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec.Tee(st)
	// Simulate the store failing mid-run (disk gone, etc.): every
	// subsequent append latches an error the loop must notice.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	d := newDaemon(mon, rec, 0, st)
	defer d.srv.Close()
	err = d.loop(make(chan struct{}), 5)
	if err == nil || !strings.Contains(err.Error(), "store") {
		t.Fatalf("loop ignored the failing store: %v", err)
	}
}
