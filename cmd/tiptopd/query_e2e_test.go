package main

// End-to-end coverage of /api/v1/query?expr=: the shared expression
// engine must agree with the live screen pipeline on the same run —
// delta(INSTRUCTIONS)/delta(CYCLES) queried over the durable store is
// the IPC column the screens computed — and a fleet aggregator must
// serve the same expression merged across agents (?agent=*) with
// ratios recomputed from summed counters.

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tiptop/internal/core"
	"tiptop/internal/history"
	"tiptop/internal/query"
	"tiptop/internal/remote"
	"tiptop/internal/store"
)

func getQueryResult(t *testing.T, url string) *query.Result {
	t.Helper()
	status, body := get(t, url)
	if status != http.StatusOK {
		t.Fatalf("HTTP %d: %s", status, body)
	}
	var res query.Result
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatalf("bad query response: %v\n%s", err, body)
	}
	return &res
}

// TestQueryExprMatchesLiveScreenIPC is the e2e golden: a seeded sim
// daemon records into a store; the IPC expression queried over that
// store at the raw tier reproduces, point for point, the IPC values
// the live screen pipeline computed for the same refreshes.
func TestQueryExprMatchesLiveScreenIPC(t *testing.T) {
	d, ts, shutdown := bootDaemon(t, t.TempDir())
	defer shutdown()
	waitUntil(t, "daemon to record", func() bool { return d.hist.Records() >= 30 })

	res := getQueryResult(t, ts.URL+"/api/v1/query?expr=delta(INSTRUCTIONS)%2Fdelta(CYCLES)")
	if len(res.Series) < 2 {
		t.Fatalf("expected per-task series plus total, got %d", len(res.Series))
	}

	// The live screen pipeline's IPC, as the recorder captured it:
	// (pid, tid, time) → the IPC column value of that refresh.
	type obsKey struct {
		pid, tid int
		at       float64
	}
	live := map[obsKey]float64{}
	for _, pid := range d.rec.PIDs() {
		for _, s := range d.rec.History(pid) {
			for _, p := range s.Points {
				live[obsKey{s.PID, s.TID, p.TimeSeconds}] = p.IPC
			}
		}
	}
	if len(live) == 0 {
		t.Fatal("recorder holds no live history")
	}

	matched := 0
	for _, s := range res.Series {
		if s.Total {
			continue
		}
		for _, p := range s.Points {
			ipc, ok := live[obsKey{s.PID, s.TID, p.TimeSeconds}]
			if !ok {
				// The ring may have evicted the oldest points the store
				// still holds; only co-observed refreshes are comparable.
				continue
			}
			matched++
			if math.Abs(p.Value-ipc) > 1e-12 {
				t.Fatalf("pid %d at t=%g: store query IPC %v, live screen IPC %v",
					s.PID, p.TimeSeconds, p.Value, ipc)
			}
		}
	}
	if matched < 10 {
		t.Fatalf("only %d points were comparable between store query and live history", matched)
	}

	// Stored expressions resolve by name on the endpoint.
	d.named = map[string]string{"ipc_expr": "delta(INSTRUCTIONS)/delta(CYCLES)"}
	srv2 := httptest.NewServer(d.handler())
	defer srv2.Close()
	named := getQueryResult(t, srv2.URL+"/api/v1/query?expr=ipc_expr")
	if !strings.Contains(named.Expr, "INSTRUCTIONS") {
		t.Fatalf("named expr resolved to %q, want the stored IPC source", named.Expr)
	}
	if len(named.Series) == 0 {
		t.Fatal("named expr returned no series")
	}
}

// TestFleetQueryExprAggregates: ?agent=*&expr= merges every agent's
// store on aligned buckets, and the merged IPC total is exactly the
// ratio of the merged instruction and cycle totals — the same
// Σinstr/Σcycles semantics as the fleet snapshot.
func TestFleetQueryExprAggregates(t *testing.T) {
	agents := []*agent{startAgent(t, "datacenter"), startAgent(t, "spec")}
	defer func() {
		for _, a := range agents {
			a.close(t)
		}
	}()
	base := t.TempDir()
	stores := map[string]*store.Store{}
	urls := make([]string, len(agents))
	for i, a := range agents {
		urls[i] = a.ts.URL
	}
	fleet, err := remote.NewFleet(urls, remote.FleetOptions{
		History:        history.Options{Capacity: 64, Window: time.Second},
		ReconnectDelay: 10 * time.Millisecond,
		Tee: func(label string) (core.Observer, error) {
			st, err := store.Open(agentStoreDir(base, label), store.Options{})
			if err != nil {
				return nil, err
			}
			stores[label] = st
			return st, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	fleet.Start(ctx)
	fd := newFleetDaemon(fleet, stores)
	ts := httptest.NewServer(fd.handler())
	defer func() {
		fleet.Close()
		ts.Close()
		cancel()
		fleet.Wait()
		for _, st := range stores {
			if err := st.Close(); err != nil {
				t.Errorf("store close: %v", err)
			}
		}
	}()
	for label, st := range stores {
		st := st
		waitUntil(t, "store of "+label, func() bool { return st.Records() >= 20 })
	}

	// Merging needs an explicit step.
	if status, body := get(t, ts.URL+"/api/v1/query?agent=*&expr=CYCLES"); status != http.StatusBadRequest {
		t.Fatalf("fleet merge without step: HTTP %d: %s", status, body)
	}

	ipc := getQueryResult(t, ts.URL+"/api/v1/query?agent=*&step=0.05&expr=delta(INSTRUCTIONS)%2Fdelta(CYCLES)")
	instr := getQueryResult(t, ts.URL+"/api/v1/query?agent=*&step=0.05&expr=delta(INSTRUCTIONS)")
	cycles := getQueryResult(t, ts.URL+"/api/v1/query?agent=*&step=0.05&expr=delta(CYCLES)")

	agentsSeen := map[string]bool{}
	for _, s := range ipc.Series {
		if !s.Total && s.Agent != "" {
			agentsSeen[s.Agent] = true
		}
	}
	if len(agentsSeen) != 2 {
		t.Fatalf("fleet series span agents %v, want both", agentsSeen)
	}

	// Pointwise: for every completed bucket present in all three
	// results, ipc_total(t) == instr_total(t)/cycles_total(t). The
	// agents keep sampling between the three requests, so the trailing
	// (still-filling) bucket of each result is excluded.
	total := func(r *query.Result) map[float64]float64 {
		m := map[float64]float64{}
		for _, s := range r.Series {
			if !s.Total {
				continue
			}
			last := -math.MaxFloat64
			for _, p := range s.Points {
				if p.TimeSeconds > last {
					last = p.TimeSeconds
				}
			}
			for _, p := range s.Points {
				if p.TimeSeconds < last { // completed buckets only
					m[p.TimeSeconds] = p.Value
				}
			}
		}
		return m
	}
	ipcT, instrT, cyclesT := total(ipc), total(instr), total(cycles)
	compared := 0
	for at, v := range ipcT {
		i, ok1 := instrT[at]
		c, ok2 := cyclesT[at]
		if !ok1 || !ok2 || c == 0 {
			continue
		}
		compared++
		if math.Abs(v-i/c) > 1e-12 {
			t.Fatalf("bucket t=%g: fleet IPC %v != Σinstr/Σcycles %v", at, v, i/c)
		}
	}
	if compared == 0 {
		t.Fatal("no completed fleet buckets were comparable")
	}
}
