// Command tiptop is the reproduction of the paper's tool: a top-like
// performance-counter monitor. On a Linux machine where perf_event_open
// is permitted it monitors real processes; everywhere else (or with
// -sim) it monitors a simulated machine running workloads from the
// paper's catalog.
//
// Usage:
//
//	tiptop              live mode on the real machine (falls back to -sim)
//	tiptop -b -n 10     batch mode, ten refreshes
//	tiptop -d 5         refresh every 5 seconds (the paper's cadence)
//	tiptop -screen fp   the §3.1 screen: IPC next to FP assists
//	tiptop -b -o csv    batch mode streaming CSV (also: -o jsonl)
//	tiptop -record f.csv     additionally record every sample to a file
//	tiptop -record data/     record into a durable store directory
//	                         (queryable, downsampled, budget-bounded)
//	tiptop -connect host:9412   render a remote tiptopd in the same UI
//	tiptop -sim spec    simulate the Nehalem box running SPEC-like jobs
//	tiptop -sim revolution   the Figure 3 scenario
//	tiptop -sim conflict     the Figure 11 mcf co-run scenario
//	tiptop -sim datacenter   the Figure 1 node
//	tiptop -list        show available screens and simulated scenarios
//	tiptop -config f.xml     load custom screens from an XML file
//	tiptop -dump-config      print the built-in configuration as XML
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"tiptop"
	"tiptop/internal/config"
	"tiptop/internal/export"
	"tiptop/internal/metrics"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tiptop:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tiptop", flag.ContinueOnError)
	var (
		batch      = fs.Bool("b", false, "batch mode: stream text, no screen control")
		delay      = fs.Float64("d", 2, "delay between refreshes, seconds")
		iterations = fs.Int("n", 0, "number of refreshes (0 = until interrupted / scenario ends)")
		screenName = fs.String("screen", "", "screen: default, branch, fp, mem, wide, system (or one from -config; default \"default\", or \"system\" with -system-wide)")
		sortBy     = fs.String("sort", "cpu", "sort key: cpu, pid, or a column name")
		maxRows    = fs.Int("rows", 0, "maximum rows displayed (0 = all)")
		user       = fs.String("u", "", "only show this user's tasks")
		parallel   = fs.Int("j", 0, "sampling shards (0 = one per CPU, 1 = serial)")
		outFormat  = fs.String("o", "", "batch output format: text, csv, jsonl (default text)")
		recordPath = fs.String("record", "", "record every sample to this target: a CSV file, a JSONL file (.jsonl/.ndjson), or a durable store directory (existing dir, trailing /, or .store)")
		connect    = fs.String("connect", "", "monitor a remote tiptopd (host:port or URL) instead of this machine")
		wireFormat = fs.String("wire", "", "stream encoding for -connect: json or binary (default json; binary falls back against older daemons)")
		fsyncStr   = fs.String("fsync", "", "store -record durability: off, an interval (2s), a record count (1000-records), or both comma-combined (default off)")
		simName    = fs.String("sim", "", "monitor a simulated scenario: spec, revolution, conflict, datacenter, assist, steady, validate")
		systemWide = fs.Bool("system-wide", false, "monitor logical CPUs instead of tasks (perf's -a; one row per CPU)")
		counters   = fs.Int("counters", 0, "PMU counter capacity for the real backend: rotate events beyond it in userland (0 = kernel multiplexing)")
		scale      = fs.Float64("scale", 0.01, "workload scale for simulated scenarios (1.0 = paper length)")
		list       = fs.Bool("list", false, "list screens and scenarios, then exit")
		listEvents = fs.Bool("list-events", false, "list the event registry with per-backend support, then exit")
		dumpConf   = fs.Bool("dump-config", false, "print the built-in XML configuration and exit")
		confFile   = fs.String("config", "", "load custom events and screens from an XML configuration file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *dumpConf {
		return config.Write(stdout, config.Default())
	}
	if *list {
		fmt.Fprintln(stdout, "screens:")
		screens := metrics.BuiltinScreens()
		for _, name := range metrics.ScreenNames() {
			cols := make([]string, len(screens[name].Columns))
			for i, c := range screens[name].Columns {
				cols[i] = c.Header
			}
			fmt.Fprintf(stdout, "  %-8s %s\n", name, strings.Join(cols, " "))
		}
		fmt.Fprintln(stdout, "simulated scenarios (-sim):", strings.Join(tiptop.ScenarioNames(), ", "))
		fmt.Fprintln(stdout, "catalog workloads:", strings.Join(tiptop.WorkloadNames(), ", "))
		return nil
	}
	if *delay <= 0 {
		return fmt.Errorf("refresh delay must be positive, got -d %v", *delay)
	}
	if *parallel < 0 {
		return fmt.Errorf("sampling shards cannot be negative, got -j %d", *parallel)
	}

	if *counters < 0 {
		return fmt.Errorf("counter capacity cannot be negative, got -counters %d", *counters)
	}
	cfg := tiptop.Config{
		Interval:    time.Duration(*delay * float64(time.Second)),
		Screen:      *screenName,
		SortBy:      *sortBy,
		MaxRows:     *maxRows,
		User:        *user,
		Parallelism: *parallel,
		SystemWide:  *systemWide,
		Counters:    *counters,
	}
	format := *outFormat
	record := *recordPath
	if *confFile != "" {
		parsed, err := config.Load(*confFile)
		if err != nil {
			return err
		}
		// Custom files may override options and define events and
		// screens; the definitions translate to the facade's
		// EventDef/ScreenDef, so a custom screen is selectable with
		// -screen and its expressions may reference custom events.
		if parsed.Options.Interval() > 0 {
			cfg.Interval = parsed.Options.Interval()
		}
		if parsed.Options.Sort != "" {
			cfg.SortBy = parsed.Options.Sort
		}
		if parsed.Options.MaxTasks > 0 {
			cfg.MaxRows = parsed.Options.MaxTasks
		}
		if parsed.Options.Parallelism > 0 {
			cfg.Parallelism = parsed.Options.Parallelism
		}
		if parsed.Options.SystemWide {
			cfg.SystemWide = true
		}
		if parsed.Options.Counters > 0 && cfg.Counters == 0 {
			cfg.Counters = parsed.Options.Counters
		}
		if format == "" {
			format = parsed.Options.Format
		}
		if record == "" {
			record = parsed.Options.Record
		}
		if *connect == "" {
			*connect = parsed.Options.Connect
		}
		if parsed.Options.Wire != "" {
			*wireFormat = parsed.Options.Wire
		}
		if parsed.Options.Fsync != "" {
			*fsyncStr = parsed.Options.Fsync
		}
		if parsed.Options.Store != "" {
			cfg.StoreDir = parsed.Options.Store
		}
		cfg.StoreRetention = parsed.Options.RetentionValue()
		cfg.StoreBudget = parsed.Options.BudgetValue()
		cfg.ApplyDefinitions(parsed)
	}
	switch *wireFormat {
	case "", "json", "binary":
	default:
		return fmt.Errorf("unknown wire format %q, want -wire json or -wire binary", *wireFormat)
	}
	fsync, err := tiptop.ParseFsync(*fsyncStr)
	if err != nil {
		return fmt.Errorf("bad -fsync: %w", err)
	}
	cfg.StoreFsync = fsync
	// A -record target naming a directory (existing, trailing "/", or
	// the .store extension) selects the durable store instead of a
	// CSV/JSONL file; XML <options store=> is the same thing spelled in
	// the configuration.
	if isStoreTarget(record) {
		cfg.StoreDir = record
		record = ""
	}
	if *listEvents {
		return printEvents(stdout, cfg, *simName)
	}
	switch format {
	case "", "text", "csv", "jsonl":
	default:
		return fmt.Errorf("unknown output format %q (want text, csv or jsonl)", format)
	}
	if format != "" && format != "text" && !*batch {
		if *outFormat != "" {
			// An explicit -o outside batch mode is a usage error...
			return fmt.Errorf("-o %s requires batch mode (-b)", format)
		}
		// ...but a config file shared with batch jobs must not make
		// the interactive screen unusable: its format only applies
		// to -b.
		format = "text"
	}
	if format == "" {
		format = "text"
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	// When samples feed a sink, the engine must not clip them: -rows
	// bounds only the rendered display, the recording covers every
	// monitored task (the same contract the Recorder observer has).
	displayRows := cfg.MaxRows
	if format != "text" || record != "" || cfg.StoreDir != "" {
		cfg.MaxRows = 0
	}

	var mon tiptop.MonitorAPI
	if *connect != "" {
		if *simName != "" {
			return fmt.Errorf("-connect monitors a remote daemon and cannot be combined with -sim %s", *simName)
		}
		// The remote daemon's screen, sort order and cadence are
		// authoritative: -connect renders what the agent samples.
		mon, err = tiptop.NewRemoteMonitorWire(*connect, *wireFormat)
	} else {
		mon, err = buildMonitor(*simName, *scale, cfg)
	}
	if err != nil {
		return err
	}
	defer mon.Close()

	em, closeSinks, err := newEmitter(mon, format, stdout, record, cfg)
	if err != nil {
		return err
	}
	em.displayRows = displayRows

	if *batch {
		err = batchLoop(mon, *iterations, em)
	} else {
		err = liveLoop(mon, *iterations, em)
	}
	// A failing final flush or file close means the recording is
	// incomplete — surface it instead of exiting 0.
	if cerr := closeSinks(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// printEvents renders the -list-events table: the full event registry
// (defaults plus -config definitions), sorted by name, with per-backend
// support status. The sim column reflects the machine the selected
// scenario runs on.
func printEvents(stdout io.Writer, cfg tiptop.Config, simName string) error {
	machine := scenarioMachine(simName)
	infos, err := tiptop.ListEvents(cfg, machine)
	if err != nil {
		return err
	}
	caps, err := tiptop.Capacities(machine)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "events (sim support on machine %q):\n", machine)
	fmt.Fprintf(stdout, "counter capacity: perf_event=%s, sim=%s (COST 0 = software/fixed, never occupies a register)\n",
		capacityString(caps["perf_event"]), capacityString(caps["sim"]))
	fmt.Fprintf(stdout, "  %-18s %-8s %-22s %-4s %-4s %-4s %s\n",
		"NAME", "KIND", "ENCODING", "PERF", "SIM", "COST", "DESCRIPTION")
	for _, info := range infos {
		desc := info.Desc
		if info.Unit != "" {
			desc = fmt.Sprintf("%s [%s]", desc, info.Unit)
		}
		fmt.Fprintf(stdout, "  %-18s %-8s %-22s %-4s %-4s %-4d %s\n",
			info.Name, info.Kind, info.Encoding,
			yesNo(info.Supported["perf_event"]), yesNo(info.Supported["sim"]),
			info.SlotCost["sim"], desc)
	}
	return nil
}

// capacityString renders a backend capacity: 0 means no userland limit
// (the kernel multiplexes, or capacity is unknown).
func capacityString(n int) string {
	if n <= 0 {
		return "kernel-multiplexed"
	}
	return fmt.Sprintf("%d", n)
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// scenarioMachine names the machine preset a -sim scenario runs on.
func scenarioMachine(simName string) tiptop.MachineName {
	switch simName {
	case "datacenter":
		return tiptop.MachineE5640
	case "steady", "validate":
		return tiptop.MachineCortexA7
	}
	return tiptop.MachineXeonW3550
}

// isStoreTarget reports whether a -record path selects the durable
// store rather than a CSV/JSONL file: an existing directory, a path
// with a trailing separator, or the .store extension.
func isStoreTarget(path string) bool {
	if path == "" {
		return false
	}
	if strings.HasSuffix(path, "/") || strings.HasSuffix(path, string(os.PathSeparator)) {
		return true
	}
	if strings.HasSuffix(path, ".store") {
		return true
	}
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

// emitter routes samples: batch output to stdout (classic text blocks
// or a structured sink) plus an optional record sink behind -record —
// a CSV/JSONL file or the durable store when the target is a
// directory. Sinks always receive the full sample; displayRows clips
// only the rendered text/screen view (the -rows semantics).
type emitter struct {
	mon         tiptop.MonitorAPI
	cols        []string
	stdout      io.Writer
	stdoutSink  export.Sink   // nil for text format
	recordSink  export.Sink   // nil without a file -record target
	recordStore *tiptop.Store // nil without a store -record target
	displayRows int
}

// newEmitter wires the output sinks; the returned closer flushes them.
func newEmitter(mon tiptop.MonitorAPI, format string, stdout io.Writer, recordPath string, cfg tiptop.Config) (*emitter, func() error, error) {
	e := &emitter{mon: mon, cols: mon.Columns(), stdout: stdout}
	if format != "text" {
		sink, err := export.NewSink(format, stdout)
		if err != nil {
			return nil, nil, err
		}
		e.stdoutSink = sink
	}
	var recordFile *os.File
	if recordPath != "" {
		f, err := os.Create(recordPath)
		if err != nil {
			return nil, nil, err
		}
		recordFile = f
		format := export.FormatCSV
		if strings.HasSuffix(recordPath, ".jsonl") || strings.HasSuffix(recordPath, ".ndjson") {
			format = export.FormatJSONL
		}
		sink, err := export.NewSink(format, f)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		e.recordSink = sink
	}
	if cfg.StoreDir != "" {
		st, err := tiptop.OpenStore(cfg.StoreDir, cfg.StoreOptions())
		if err != nil {
			if recordFile != nil {
				recordFile.Close()
			}
			return nil, nil, err
		}
		st.SetColumns(e.cols)
		e.recordStore = st
	}
	closer := func() error {
		var first error
		if e.stdoutSink != nil {
			first = e.stdoutSink.Close()
		}
		if e.recordSink != nil {
			if err := e.recordSink.Close(); err != nil && first == nil {
				first = err
			}
		}
		if recordFile != nil {
			if err := recordFile.Close(); err != nil && first == nil {
				first = err
			}
		}
		if e.recordStore != nil {
			if err := e.recordStore.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	return e, closer, nil
}

// toExport converts a public sample to the sink representation.
func (e *emitter) toExport(s *tiptop.Sample) *export.Sample {
	out := &export.Sample{
		TimeSeconds: s.Time.Seconds(),
		Columns:     e.cols,
		Rows:        make([]export.Row, 0, len(s.Rows)),
	}
	for i := range s.Rows {
		r := &s.Rows[i]
		out.Rows = append(out.Rows, export.Row{
			PID:       r.PID,
			TID:       r.TID,
			User:      r.User,
			Command:   r.Command,
			State:     r.State,
			CPUPct:    r.CPUPct,
			IPC:       r.IPC,
			Monitored: r.Monitored,
			Values:    r.Columns,
		})
	}
	return out
}

// display returns the sample as rendered views see it: clipped to
// -rows when the engine-side truncation was lifted for the sinks.
func (e *emitter) display(s *tiptop.Sample) *tiptop.Sample {
	if e.displayRows <= 0 || len(s.Rows) <= e.displayRows {
		return s
	}
	clipped := *s
	clipped.Rows = s.Rows[:e.displayRows]
	return &clipped
}

// emit writes one batch-mode sample to stdout and the record sinks.
func (e *emitter) emit(s *tiptop.Sample) error {
	var es *export.Sample
	if e.stdoutSink != nil || e.recordSink != nil {
		es = e.toExport(s)
	}
	if e.stdoutSink != nil {
		if err := e.stdoutSink.Write(es); err != nil {
			return err
		}
	} else {
		if err := e.mon.Render(e.stdout, e.display(s)); err != nil {
			return err
		}
	}
	if e.recordSink != nil {
		if err := e.recordSink.Write(es); err != nil {
			return err
		}
	}
	if e.recordStore != nil {
		return e.recordStore.RecordSample(s)
	}
	return nil
}

// record writes only to the record sinks (the live loop's tee).
func (e *emitter) record(s *tiptop.Sample) error {
	if e.recordSink != nil {
		if err := e.recordSink.Write(e.toExport(s)); err != nil {
			return err
		}
	}
	if e.recordStore != nil {
		return e.recordStore.RecordSample(s)
	}
	return nil
}
