// Command tiptop is the reproduction of the paper's tool: a top-like
// performance-counter monitor. On a Linux machine where perf_event_open
// is permitted it monitors real processes; everywhere else (or with
// -sim) it monitors a simulated machine running workloads from the
// paper's catalog.
//
// Usage:
//
//	tiptop              live mode on the real machine (falls back to -sim)
//	tiptop -b -n 10     batch mode, ten refreshes
//	tiptop -d 5         refresh every 5 seconds (the paper's cadence)
//	tiptop -screen fp   the §3.1 screen: IPC next to FP assists
//	tiptop -sim spec    simulate the Nehalem box running SPEC-like jobs
//	tiptop -sim revolution   the Figure 3 scenario
//	tiptop -sim conflict     the Figure 11 mcf co-run scenario
//	tiptop -sim datacenter   the Figure 1 node
//	tiptop -list        show available screens and simulated scenarios
//	tiptop -config f.xml     load custom screens from an XML file
//	tiptop -dump-config      print the built-in configuration as XML
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tiptop"
	"tiptop/internal/config"
	"tiptop/internal/metrics"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tiptop:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tiptop", flag.ContinueOnError)
	var (
		batch      = fs.Bool("b", false, "batch mode: stream text, no screen control")
		delay      = fs.Float64("d", 2, "delay between refreshes, seconds")
		iterations = fs.Int("n", 0, "number of refreshes (0 = until interrupted / scenario ends)")
		screenName = fs.String("screen", "default", "screen: default, branch, fp, mem (or one from -config)")
		sortBy     = fs.String("sort", "cpu", "sort key: cpu, pid, or a column name")
		maxRows    = fs.Int("rows", 0, "maximum rows displayed (0 = all)")
		user       = fs.String("u", "", "only show this user's tasks")
		parallel   = fs.Int("j", 0, "sampling shards (0 = one per CPU, 1 = serial)")
		simName    = fs.String("sim", "", "monitor a simulated scenario: spec, revolution, conflict, datacenter")
		scale      = fs.Float64("scale", 0.01, "workload scale for simulated scenarios (1.0 = paper length)")
		list       = fs.Bool("list", false, "list screens and scenarios, then exit")
		dumpConf   = fs.Bool("dump-config", false, "print the built-in XML configuration and exit")
		confFile   = fs.String("config", "", "load screens from an XML configuration file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *dumpConf {
		return config.Write(os.Stdout, config.Default())
	}
	if *list {
		fmt.Println("screens:")
		for name, s := range metrics.BuiltinScreens() {
			cols := make([]string, len(s.Columns))
			for i, c := range s.Columns {
				cols[i] = c.Header
			}
			fmt.Printf("  %-8s %s\n", name, strings.Join(cols, " "))
		}
		fmt.Println("simulated scenarios (-sim): spec, revolution, conflict, datacenter")
		fmt.Println("catalog workloads:", strings.Join(tiptop.WorkloadNames(), ", "))
		return nil
	}

	cfg := tiptop.Config{
		Interval:    time.Duration(*delay * float64(time.Second)),
		Screen:      *screenName,
		SortBy:      *sortBy,
		MaxRows:     *maxRows,
		User:        *user,
		Parallelism: *parallel,
	}
	if *confFile != "" {
		f, err := os.Open(*confFile)
		if err != nil {
			return err
		}
		parsed, err := config.Parse(f)
		f.Close()
		if err != nil {
			return err
		}
		// Custom files may override options and define screens; only
		// the options translate through the public facade (custom
		// screens require the library API).
		if parsed.Options.Interval() > 0 {
			cfg.Interval = parsed.Options.Interval()
		}
		if parsed.Options.Sort != "" {
			cfg.SortBy = parsed.Options.Sort
		}
		if parsed.Options.MaxTasks > 0 {
			cfg.MaxRows = parsed.Options.MaxTasks
		}
		if parsed.Options.Parallelism > 0 {
			cfg.Parallelism = parsed.Options.Parallelism
		}
	}

	mon, err := buildMonitor(*simName, *scale, cfg)
	if err != nil {
		return err
	}
	defer mon.Close()

	if *batch {
		return batchLoop(mon, *iterations)
	}
	return liveLoop(mon, *iterations)
}
