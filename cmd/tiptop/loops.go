package main

import (
	"fmt"
	"os"
	"os/signal"
	"time"

	"tiptop"
	"tiptop/internal/term"
)

// buildMonitor selects the backend: a named simulated scenario, or the
// real machine with automatic fallback to the quickstart scenario when
// perf_event is unavailable (the common case inside containers).
func buildMonitor(simName string, scale float64, cfg tiptop.Config) (*tiptop.Monitor, error) {
	if simName == "" {
		mon, err := tiptop.NewRealMonitor(cfg)
		if err == nil {
			return mon, nil
		}
		fmt.Fprintf(os.Stderr, "tiptop: %v; falling back to -sim spec\n", err)
		simName = "spec"
	}
	sc, err := buildScenario(simName, scale)
	if err != nil {
		return nil, err
	}
	return tiptop.NewSimMonitor(sc, cfg)
}

// buildScenario constructs the named simulated scenario.
func buildScenario(name string, scale float64) (*tiptop.Scenario, error) {
	return tiptop.NewNamedScenario(name, scale)
}

// batchLoop streams samples (tiptop -b) through the emitter: classic
// text blocks, or CSV/JSONL when -o selects a sink. It runs against any
// MonitorAPI — a local engine or a -connect'ed remote daemon.
func batchLoop(mon tiptop.MonitorAPI, iterations int, em *emitter) error {
	if _, err := mon.SampleNow(); err != nil { // attach pass
		return err
	}
	interrupted := interruptChan()
	for i := 0; iterations <= 0 || i < iterations; i++ {
		select {
		case <-interrupted:
			return nil
		default:
		}
		sample, err := mon.Sample()
		if err != nil {
			return err
		}
		if err := em.emit(sample); err != nil {
			return err
		}
		if len(sample.Rows) == 0 && iterations <= 0 {
			// Simulated scenario drained.
			return nil
		}
	}
	return nil
}

// liveLoop repaints an ANSI screen every interval, teeing each sample
// to the record sink when -record is set. Keyboard handling is
// line-based (press q then Enter) to stay within the standard library;
// Ctrl-C always works.
func liveLoop(mon tiptop.MonitorAPI, iterations int, em *emitter) error {
	screen, err := term.NewScreen(os.Stdout, 40, 160)
	if err != nil {
		return err
	}
	defer screen.Close()

	keys := make(chan term.Key, 8)
	go func() {
		buf := make([]byte, 64)
		for {
			n, err := os.Stdin.Read(buf)
			if err != nil {
				return
			}
			for _, k := range term.DecodeKeys(buf[:n]) {
				keys <- k
			}
		}
	}()
	interrupted := interruptChan()

	if _, err := mon.SampleNow(); err != nil {
		return err
	}
	for i := 0; iterations <= 0 || i < iterations; i++ {
		sample, err := mon.Sample()
		if err != nil {
			return err
		}
		paint(screen, mon, em.display(sample))
		if err := em.record(sample); err != nil {
			return err
		}
		select {
		case <-interrupted:
			return nil
		case k := <-keys:
			if k == term.KeyQuit {
				return nil
			}
		default:
		}
		if len(sample.Rows) == 0 && iterations <= 0 {
			return nil
		}
	}
	return nil
}

func paint(screen *term.Screen, mon tiptop.MonitorAPI, sample *tiptop.Sample) {
	rows, _ := screen.Size()
	screen.Clear()
	status := fmt.Sprintf("tiptop - %s - %d tasks - t=%s (q<Enter> or Ctrl-C quits)",
		mon.Machine(), len(sample.Rows), sample.Time.Truncate(time.Millisecond))
	screen.SetLine(0, term.Reverse(status))
	header := fmt.Sprintf("%7s %-8s %5s", "PID", "USER", "%CPU")
	for _, h := range mon.Headers() {
		header += fmt.Sprintf(" %8s", h)
	}
	header += " COMMAND"
	screen.SetLine(1, term.Bold(header))
	for i, row := range sample.Rows {
		if 2+i >= rows {
			break
		}
		line := fmt.Sprintf("%7d %-8.8s %5.1f", row.PID, row.User, row.CPUPct)
		for _, v := range row.Columns {
			if row.Monitored {
				line += fmt.Sprintf(" %8.2f", v)
			} else {
				line += fmt.Sprintf(" %8s", "-")
			}
		}
		line += " " + row.Command
		screen.SetLine(2+i, line)
	}
	_ = screen.Flush()
}

func interruptChan() <-chan os.Signal {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	return ch
}

// newTestScreen builds a small off-screen terminal for tests.
func newTestScreen(w interface{ Write([]byte) (int, error) }) (*term.Screen, error) {
	return term.NewScreen(w, 30, 140)
}
