package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tiptop"
)

func TestBuildScenarioAll(t *testing.T) {
	for _, name := range []string{"spec", "revolution", "conflict", "datacenter", "assist"} {
		sc, err := buildScenario(name, 0.001)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sc == nil {
			t.Fatalf("%s: nil scenario", name)
		}
	}
	if _, err := buildScenario("wargames", 1); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestBuildScenarioDatacenterShape(t *testing.T) {
	sc, err := buildScenario("datacenter", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := tiptop.NewSimMonitor(sc, tiptop.Config{Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	mon.SampleNow()
	sample, err := mon.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if len(sample.Rows) != 11 {
		t.Fatalf("datacenter rows = %d, want the 11 Figure 1 processes", len(sample.Rows))
	}
}

func TestBuildMonitorFallsBack(t *testing.T) {
	// In environments without perf_event this exercises the fallback;
	// where perf works, it exercises the real path. Either way a
	// usable monitor must come back.
	mon, err := buildMonitor("", 0.001, tiptop.Config{Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	if mon.Machine() == "" {
		t.Fatal("machine description empty")
	}
}

// TestRunListDeterministic is the regression test for the map-iteration
// bug: two -list runs must produce identical, sorted output.
func TestRunListDeterministic(t *testing.T) {
	render := func() string {
		var sb strings.Builder
		if err := run([]string{"-list"}, &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	first := render()
	for i := 0; i < 10; i++ {
		if got := render(); got != first {
			t.Fatalf("-list output changed between runs:\n%s\nvs\n%s", first, got)
		}
	}
	// The screen names appear in sorted order.
	var names []string
	for _, line := range strings.Split(first, "\n") {
		fields := strings.Fields(line)
		if len(fields) > 1 && strings.HasPrefix(line, "  ") && !strings.HasPrefix(line, "   ") {
			names = append(names, fields[0])
		}
	}
	want := []string{"branch", "default", "fp", "lat", "mem", "roofline"}
	if len(names) < len(want) {
		t.Fatalf("screen lines = %v", names)
	}
	for i, name := range want {
		if names[i] != name {
			t.Fatalf("screens not sorted: %v, want prefix %v", names, want)
		}
	}
}

func TestRunDumpConfigDeterministic(t *testing.T) {
	var first string
	for i := 0; i < 5; i++ {
		var sb strings.Builder
		if err := run([]string{"-dump-config"}, &sb); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = sb.String()
			if !strings.Contains(first, `name="default"`) {
				t.Fatalf("dump-config output = %q", first)
			}
			continue
		}
		if sb.String() != first {
			t.Fatal("-dump-config output changed between runs")
		}
	}
}

func TestRunBatchSim(t *testing.T) {
	err := run([]string{"-b", "-n", "2", "-d", "1", "-sim", "spec", "-scale", "0.001"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunBatchGolden pins the batch-mode text output over a seeded sim
// scenario byte for byte. The simulator is deterministic, so any drift
// here is a real behaviour change.
func TestRunBatchGolden(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-b", "-n", "2", "-d", "1", "-sim", "datacenter"}, &sb); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "batch_datacenter.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if sb.String() != string(want) {
		t.Fatalf("batch output drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, sb.String(), want)
	}
}

// TestRunFlagValidation covers the CLI input checks: negative -j,
// non-positive -d, unknown -sort/-screen/-o, bad combinations.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		errWant string
	}{
		{"zero delay", []string{"-d", "0"}, "delay must be positive"},
		{"negative delay", []string{"-d", "-3"}, "delay must be positive"},
		{"negative shards", []string{"-j", "-1"}, "cannot be negative"},
		{"unknown sort", []string{"-sort", "karma", "-sim", "spec"}, "unknown sort key"},
		{"sort from other screen", []string{"-sort", "dmis", "-screen", "branch", "-sim", "spec"}, "unknown sort key"},
		{"unknown screen", []string{"-screen", "nope", "-sim", "spec"}, "unknown screen"},
		{"unknown scenario", []string{"-sim", "nope"}, "unknown scenario"},
		{"unknown format", []string{"-b", "-o", "yaml", "-sim", "spec"}, "unknown output format"},
		{"format without batch", []string{"-o", "csv", "-sim", "spec"}, "requires batch mode"},
		{"unknown flag", []string{"-bogusflag"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		err := run(tc.args, io.Discard)
		if err == nil {
			t.Errorf("%s: args %v must fail", tc.name, tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.errWant) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.errWant)
		}
	}
	// The validated inputs still work.
	ok := [][]string{
		{"-b", "-n", "1", "-sort", "pid", "-sim", "spec", "-scale", "0.001"},
		{"-b", "-n", "1", "-sort", "ipc", "-sim", "spec", "-scale", "0.001"},
		{"-b", "-n", "1", "-j", "2", "-sim", "spec", "-scale", "0.001"},
	}
	for _, args := range ok {
		if err := run(args, io.Discard); err != nil {
			t.Errorf("args %v: %v", args, err)
		}
	}
}

func TestRunBatchCSVOutput(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-b", "-n", "2", "-o", "csv", "-sim", "datacenter"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if !strings.HasPrefix(lines[0], "time_s,pid,tid,user,command,state,cpu_pct,ipc,monitored") {
		t.Fatalf("csv header = %q", lines[0])
	}
	if len(lines) != 1+2*11 { // header + 11 rows × 2 samples
		t.Fatalf("csv lines = %d:\n%s", len(lines), sb.String())
	}
	if !strings.Contains(sb.String(), "process1") {
		t.Fatalf("csv rows missing workloads:\n%s", sb.String())
	}
}

func TestRunBatchJSONLOutput(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-b", "-n", "2", "-o", "jsonl", "-sim", "datacenter"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("jsonl lines = %d", len(lines))
	}
	for _, line := range lines {
		var sample struct {
			TimeSeconds float64  `json:"time_s"`
			Columns     []string `json:"columns"`
			Rows        []struct {
				Command string `json:"command"`
			} `json:"rows"`
		}
		if err := json.Unmarshal([]byte(line), &sample); err != nil {
			t.Fatalf("bad jsonl line %q: %v", line, err)
		}
		if sample.TimeSeconds <= 0 || len(sample.Columns) == 0 || len(sample.Rows) == 0 {
			t.Fatalf("sample = %+v", sample)
		}
	}
}

func TestRunRecordToFile(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		file string
		want string
	}{
		{"samples.csv", "time_s,pid"},
		{"samples.jsonl", `{"time_s":`},
	} {
		path := filepath.Join(dir, tc.file)
		err := run([]string{"-b", "-n", "2", "-record", path, "-sim", "datacenter"}, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), tc.want) {
			t.Fatalf("%s missing %q:\n%s", tc.file, tc.want, data)
		}
	}
	// Unwritable record path fails cleanly.
	if err := run([]string{"-b", "-record", filepath.Join(dir, "no/such/dir/x.csv"), "-sim", "spec"}, io.Discard); err == nil {
		t.Fatal("bad record path accepted")
	}
}

// TestRecordSeesRowsBeyondDisplayClip: -rows bounds the rendered
// display only; the -record sink must cover every monitored task.
func TestRecordSeesRowsBeyondDisplayClip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "all.csv")
	var sb strings.Builder
	err := run([]string{"-b", "-n", "1", "-rows", "3", "-record", path, "-sim", "datacenter"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	display := strings.Count(sb.String(), "process")
	if display != 3 {
		t.Fatalf("displayed rows = %d, want the -rows clip of 3:\n%s", display, sb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if recorded := strings.Count(string(data), "process"); recorded != 11 {
		t.Fatalf("recorded rows = %d, want all 11 tasks:\n%s", recorded, data)
	}
}

func TestRunWithConfigFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tiptop.xml")
	content := `<tiptop><options delay="1" sort="pid" max_tasks="2" format="csv" record="` +
		filepath.Join(dir, "rec.csv") + `"/></tiptop>`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-b", "-n", "1", "-sim", "spec", "-scale", "0.001", "-config", path}, &sb); err != nil {
		t.Fatal(err)
	}
	// The config's format=csv drives stdout, its record= writes the file.
	if !strings.HasPrefix(sb.String(), "time_s,pid") {
		t.Fatalf("config format ignored: %q", sb.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "rec.csv")); err != nil {
		t.Fatalf("config record ignored: %v", err)
	}
	// Invalid config file.
	bad := filepath.Join(dir, "bad.xml")
	os.WriteFile(bad, []byte("<tiptop><screen name='s'/></tiptop>"), 0o644)
	if err := run([]string{"-b", "-config", bad, "-sim", "spec"}, io.Discard); err == nil {
		t.Fatal("invalid config must fail")
	}
	if err := run([]string{"-b", "-config", filepath.Join(dir, "missing.xml"), "-sim", "spec"}, io.Discard); err == nil {
		t.Fatal("missing config must fail")
	}
}

func TestPaintDoesNotPanic(t *testing.T) {
	sc, err := buildScenario("spec", 0.001)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := tiptop.NewSimMonitor(sc, tiptop.Config{Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	mon.SampleNow()
	sample, err := mon.Sample()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	screen, err := newTestScreen(&sb)
	if err != nil {
		t.Fatal(err)
	}
	paint(screen, mon, sample)
	if !strings.Contains(sb.String(), "tiptop") {
		t.Fatal("status bar missing")
	}
}

// TestRunListEventsGolden pins the -list-events registry table: sorted
// by name, deterministic run to run, with per-backend support status.
func TestRunListEventsGolden(t *testing.T) {
	render := func() string {
		var sb strings.Builder
		if err := run([]string{"-list-events"}, &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	first := render()
	want, err := os.ReadFile(filepath.Join("testdata", "list_events.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if first != string(want) {
		t.Fatalf("-list-events drifted:\n--- got ---\n%s--- want ---\n%s", first, want)
	}
	for i := 0; i < 5; i++ {
		if render() != first {
			t.Fatal("-list-events output changed between runs")
		}
	}
}

// TestRunListEventsWithConfig: -config <event> definitions appear in
// the listing, and the sim column tracks the selected scenario's
// machine (the PPC970 never decodes the FP-assist code — here approximated
// by the datacenter/Westmere switch keeping it supported).
func TestRunListEventsWithConfig(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-list-events", "-config", filepath.Join("..", "..", "examples", "custom-events.xml")}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"FP_ASSIST_RAW", "L1D_MISSES", "hw-cache", "type=4 config=0x1ef7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list-events with config missing %q:\n%s", want, out)
		}
	}
}

// TestRunBatchAssistCustomGolden is the end-to-end test of the
// extensible event registry: a custom event defined purely in XML
// (FP_ASSIST_RAW, raw code 0x1EF7 — no registry defaults edited)
// renders in a custom screen against the sim backend, whose machine
// model decodes the raw code. The golden pins the §3.1 signature: the
// x87/inf micro-kernel's IPC collapses while %ASST shows 25 assists
// per hundred instructions.
func TestRunBatchAssistCustomGolden(t *testing.T) {
	var sb strings.Builder
	args := []string{"-b", "-n", "2", "-d", "0.05", "-sim", "assist",
		"-config", filepath.Join("..", "..", "examples", "custom-events.xml"),
		"-screen", "fpcustom"}
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "batch_assist_custom.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if sb.String() != string(want) {
		t.Fatalf("assist batch output drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, sb.String(), want)
	}
	if !strings.Contains(sb.String(), "25.00") {
		t.Fatal("golden lost the 25%% assist signature")
	}
}

// TestRunRejectsUnknownScreenIdentifier: a -config screen with a typo'd
// event fails at load time, naming the column and the identifier.
func TestRunRejectsUnknownScreenIdentifier(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "typo.xml")
	content := `<tiptop><screen name="s"><column name="c" header="C" expr="ratio(CYCELS, INSTRUCTIONS)"/></screen></tiptop>`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-b", "-config", path, "-sim", "spec"}, io.Discard)
	if err == nil {
		t.Fatal("typo'd identifier accepted")
	}
	for _, want := range []string{`"c"`, `"CYCELS"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %s", err, want)
		}
	}
}

// TestRunRecordStore: a -record target naming a directory selects the
// durable store; the recorded history must be queryable and span a
// second run against the same directory.
func TestRunRecordStore(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-b", "-n", "3", "-sim", "datacenter", "-d", "0.01",
		"-record", dir}, io.Discard); err != nil {
		t.Fatal(err)
	}
	st, err := tiptop.OpenStore(dir, tiptop.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	firstBoundary := st.LastTime().Seconds()
	res, err := st.Query(tiptop.StoreQuery{PID: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) == 0 || len(res.Series[0].Points) == 0 {
		t.Fatal("store recorded no series")
	}
	if len(res.Columns) == 0 {
		t.Fatalf("store lost the screen columns: %+v", res)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Second run appends past the first (the monotonic store clock).
	if err := run([]string{"-b", "-n", "2", "-sim", "datacenter", "-d", "0.01",
		"-record", dir}, io.Discard); err != nil {
		t.Fatal(err)
	}
	st, err = tiptop.OpenStore(dir, tiptop.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.LastTime().Seconds(); got <= firstBoundary {
		t.Fatalf("second run did not extend history (%g <= %g)", got, firstBoundary)
	}
	res, err = st.Query(tiptop.StoreQuery{PID: -1})
	if err != nil {
		t.Fatal(err)
	}
	var before, after int
	for _, p := range res.Machine {
		if p.TimeSeconds <= firstBoundary {
			before++
		} else {
			after++
		}
	}
	if before == 0 || after == 0 {
		t.Fatalf("recorded history does not span the runs: %d before, %d after", before, after)
	}
}

// TestIsStoreTarget pins the -record target classification.
func TestIsStoreTarget(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]bool{
		"":                false,
		"samples.csv":     false,
		"samples.jsonl":   false,
		"history.store":   true,
		"data/":           true,
		dir:               true, // existing directory
		"missing-but-csv": false,
	}
	for path, want := range cases {
		if got := isStoreTarget(path); got != want {
			t.Errorf("isStoreTarget(%q) = %v, want %v", path, got, want)
		}
	}
}
