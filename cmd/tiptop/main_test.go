package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tiptop"
)

func TestBuildScenarioAll(t *testing.T) {
	for _, name := range []string{"spec", "revolution", "conflict", "datacenter"} {
		sc, err := buildScenario(name, 0.001)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sc == nil {
			t.Fatalf("%s: nil scenario", name)
		}
	}
	if _, err := buildScenario("wargames", 1); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestBuildScenarioDatacenterShape(t *testing.T) {
	sc, err := buildScenario("datacenter", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := tiptop.NewSimMonitor(sc, tiptop.Config{Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	mon.SampleNow()
	sample, err := mon.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if len(sample.Rows) != 11 {
		t.Fatalf("datacenter rows = %d, want the 11 Figure 1 processes", len(sample.Rows))
	}
}

func TestBuildMonitorFallsBack(t *testing.T) {
	// In environments without perf_event this exercises the fallback;
	// where perf works, it exercises the real path. Either way a
	// usable monitor must come back.
	mon, err := buildMonitor("", 0.001, tiptop.Config{Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	if mon.Machine() == "" {
		t.Fatal("machine description empty")
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDumpConfig(t *testing.T) {
	if err := run([]string{"-dump-config"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBatchSim(t *testing.T) {
	err := run([]string{"-b", "-n", "2", "-d", "1", "-sim", "spec", "-scale", "0.001"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-sim", "nope"}); err == nil {
		t.Fatal("unknown scenario must fail")
	}
	if err := run([]string{"-screen", "nope", "-sim", "spec"}); err == nil {
		t.Fatal("unknown screen must fail")
	}
	if err := run([]string{"-bogusflag"}); err == nil {
		t.Fatal("unknown flag must fail")
	}
}

func TestRunWithConfigFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tiptop.xml")
	content := `<tiptop><options delay="1" sort="pid" max_tasks="2"/></tiptop>`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-b", "-n", "1", "-sim", "spec", "-scale", "0.001", "-config", path}); err != nil {
		t.Fatal(err)
	}
	// Invalid config file.
	bad := filepath.Join(dir, "bad.xml")
	os.WriteFile(bad, []byte("<tiptop><screen name='s'/></tiptop>"), 0o644)
	if err := run([]string{"-b", "-config", bad, "-sim", "spec"}); err == nil {
		t.Fatal("invalid config must fail")
	}
	if err := run([]string{"-b", "-config", filepath.Join(dir, "missing.xml"), "-sim", "spec"}); err == nil {
		t.Fatal("missing config must fail")
	}
}

func TestPaintDoesNotPanic(t *testing.T) {
	sc, err := buildScenario("spec", 0.001)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := tiptop.NewSimMonitor(sc, tiptop.Config{Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	mon.SampleNow()
	sample, err := mon.Sample()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	screen, err := newTestScreen(&sb)
	if err != nil {
		t.Fatal(err)
	}
	paint(screen, mon, sample)
	if !strings.Contains(sb.String(), "tiptop") {
		t.Fatal("status bar missing")
	}
}
