package main

// e2e of the -connect flag: the classic batch UI rendering rows that
// arrive over the wire from a (simulated) remote daemon.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tiptop"
	"tiptop/internal/remote"
)

// startWireAgent serves a simulated monitor over the wire protocol,
// publishing refreshes continuously like tiptopd's sampling loop.
func startWireAgent(t *testing.T) *httptest.Server {
	t.Helper()
	sc, err := tiptop.NewNamedScenario("datacenter", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := tiptop.NewSimMonitor(sc, tiptop.Config{Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := remote.NewServer(nil)
	mux := http.NewServeMux()
	srv.Register(mux)
	ts := httptest.NewServer(mux)

	publish := func(s *tiptop.Sample) error {
		return srv.Publish(mon.WireSample(s))
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s, err := mon.SampleNow()
		if err != nil {
			return
		}
		if err := publish(s); err != nil {
			return
		}
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
			s, err := mon.Sample()
			if err != nil {
				return
			}
			if err := publish(s); err != nil {
				return
			}
		}
	}()
	t.Cleanup(func() {
		close(stop)
		<-done
		srv.Close()
		ts.Close()
		mon.Close()
	})
	return ts
}

// TestRunConnectBatch is the -connect acceptance path: `tiptop -connect
// URL -b -n 3` renders live remote rows through the existing batch UI.
func TestRunConnectBatch(t *testing.T) {
	ts := startWireAgent(t)
	var sb strings.Builder
	if err := run([]string{"-connect", ts.URL, "-b", "-n", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if got := strings.Count(out, "--- t="); got != 3 {
		t.Fatalf("rendered %d blocks, want 3:\n%s", got, out)
	}
	for _, want := range []string{"PID", "USER", "%CPU", "IPC", "COMMAND", "process1", "user1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("batch output missing %q:\n%s", want, out)
		}
	}
}

// TestRunConnectCSV: the export sinks run unchanged against a remote
// monitor.
func TestRunConnectCSV(t *testing.T) {
	ts := startWireAgent(t)
	var sb strings.Builder
	if err := run([]string{"-connect", ts.URL, "-b", "-n", "2", "-o", "csv"}, &sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if !strings.HasPrefix(lines[0], "time_s,pid,tid,user,command") {
		t.Fatalf("csv header = %q", lines[0])
	}
	// Two refreshes of the 11-task datacenter node.
	if len(lines) != 1+2*11 {
		t.Fatalf("csv lines = %d, want header + 22 rows\n%s", len(lines), sb.String())
	}
}

func TestRunConnectValidation(t *testing.T) {
	if err := run([]string{"-connect", "127.0.0.1:1", "-sim", "spec"}, io.Discard); err == nil {
		t.Fatal("-connect with -sim must fail")
	}
	// Nothing listening: a fast, useful error.
	if err := run([]string{"-connect", "127.0.0.1:1", "-b", "-n", "1"}, io.Discard); err == nil {
		t.Fatal("-connect to a dead address must fail")
	}
}
