module tiptop

go 1.24
