package tiptop

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestScenarioCreation(t *testing.T) {
	for _, name := range []MachineName{MachineXeonW3550, MachineE5640, MachineCore2, MachinePPC970} {
		sc, err := NewScenario(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sc.Machine() == nil {
			t.Fatal("machine accessor")
		}
	}
	if _, err := NewScenario("amiga"); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestWorkloadCatalogComplete(t *testing.T) {
	sc, _ := NewScenario(MachineXeonW3550)
	for _, name := range WorkloadNames() {
		pid, err := sc.StartWorkload("u", name, 0.0001)
		if err != nil {
			t.Fatalf("StartWorkload(%s): %v", name, err)
		}
		if pid == 0 {
			t.Fatalf("%s: zero pid", name)
		}
	}
	if _, err := sc.StartWorkload("u", "doom", 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestSimMonitorEndToEnd(t *testing.T) {
	sc, err := NewScenario(MachineXeonW3550)
	if err != nil {
		t.Fatal(err)
	}
	pid, err := sc.StartWorkload("alice", "gromacs", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewSimMonitor(sc, Config{Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	if _, err := mon.SampleNow(); err != nil { // attach pass
		t.Fatal(err)
	}
	sample, err := mon.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if len(sample.Rows) != 1 {
		t.Fatalf("rows = %d", len(sample.Rows))
	}
	row := sample.Rows[0]
	if row.PID != pid || row.User != "alice" || row.Command != "435.gromacs" {
		t.Fatalf("row = %+v", row)
	}
	if !row.Monitored {
		t.Fatal("row must be monitored")
	}
	// gromacs is calibrated to IPC ~1.7 on the W3550.
	if row.IPC < 1.4 || row.IPC > 2.0 {
		t.Fatalf("IPC = %v", row.IPC)
	}
	if row.Events["CYCLES"] == 0 || row.Events["INSTRUCTIONS"] == 0 {
		t.Fatal("raw events missing")
	}
	if len(row.Columns) != len(mon.Headers()) {
		t.Fatal("column/header mismatch")
	}
}

func TestMonitorScreensAndEvents(t *testing.T) {
	sc, _ := NewScenario(MachineXeonW3550)
	sc.StartWorkload("u", "mcf", 0.001)
	mon, err := NewSimMonitor(sc, Config{Screen: "mem"})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	headers := strings.Join(mon.Headers(), " ")
	if !strings.Contains(headers, "L2M") || !strings.Contains(headers, "L3M") {
		t.Fatalf("mem screen headers = %q", headers)
	}
	evs := strings.Join(mon.Events(), " ")
	if !strings.Contains(evs, "L2_MISSES") {
		t.Fatalf("events = %q", evs)
	}
	if _, err := NewSimMonitor(sc, Config{Screen: "bogus"}); err == nil {
		t.Fatal("unknown screen accepted")
	}
	if _, err := NewSimMonitor(nil, Config{}); err == nil {
		t.Fatal("nil scenario accepted")
	}
}

func TestFPMicroThroughPublicAPI(t *testing.T) {
	sc, _ := NewScenario(MachineXeonW3550)
	// 10M iterations at the assisted IPC of ~0.015 last several
	// simulated seconds: plenty of refreshes observe the collapse.
	if _, err := sc.StartFPMicro("u", "x87", "nan", 10_000_000); err != nil {
		t.Fatal(err)
	}
	mon, err := NewSimMonitor(sc, Config{Screen: "fp", Interval: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	mon.SampleNow()
	sample, err := mon.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if len(sample.Rows) == 0 {
		t.Fatal("micro-kernel vanished before the first refresh")
	}
	row := sample.Rows[0]
	if row.IPC > 0.03 {
		t.Fatalf("x87 NaN IPC = %v, want the Table 1 collapse", row.IPC)
	}
	if row.Events["FP_ASSIST"] == 0 {
		t.Fatal("assists must be counted")
	}
	// Bad arguments.
	if _, err := sc.StartFPMicro("u", "mmx", "nan", 1); err == nil {
		t.Fatal("bad mode accepted")
	}
	if _, err := sc.StartFPMicro("u", "x87", "subnormal", 1); err == nil {
		t.Fatal("bad values accepted")
	}
}

func TestMicroKernelAssemblyAPI(t *testing.T) {
	sc, _ := NewScenario(MachineXeonW3550)
	pid, err := sc.StartMicroKernel("u", "loop", `
  movi r1, 100000
loop:
  iadd r0, r0, 1
  cmp r0, r1
  jne loop
  halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Running(pid) {
		t.Fatal("kernel must be running")
	}
	sc.Advance(time.Second)
	if sc.Running(pid) {
		t.Fatal("300k instructions finish well within a second")
	}
	if _, err := sc.StartMicroKernel("u", "bad", "not asm"); err == nil {
		t.Fatal("bad assembly accepted")
	}
}

func TestSyntheticAndKill(t *testing.T) {
	sc, _ := NewScenario(MachineE5640)
	pid, err := sc.StartSynthetic("ops", "daemon", 1.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	sc.Advance(2 * time.Second)
	if !sc.Running(pid) {
		t.Fatal("synthetic jobs never exit by themselves")
	}
	if err := sc.Kill(pid); err != nil {
		t.Fatal(err)
	}
	if sc.Running(pid) {
		t.Fatal("killed job still running")
	}
	if _, err := sc.StartSynthetic("ops", "bad", 99); err == nil {
		t.Fatal("absurd IPC accepted")
	}
}

func TestRenderBatch(t *testing.T) {
	sc, _ := NewScenario(MachineXeonW3550)
	sc.StartWorkload("bob", "astar", 0.005)
	mon, _ := NewSimMonitor(sc, Config{Interval: time.Second})
	defer mon.Close()
	mon.SampleNow()
	sample, _ := mon.Sample()
	var sb strings.Builder
	if err := mon.Render(&sb, sample); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"PID", "USER", "IPC", "bob", "473.astar"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTopologyAndScenarioHelpers(t *testing.T) {
	sc, _ := NewScenario(MachineXeonW3550)
	if !strings.Contains(sc.Topology(), "Socket#0") {
		t.Fatal("topology rendering")
	}
	if sc.Now() != 0 {
		t.Fatal("fresh scenario at t=0")
	}
	quick := ScenarioSPEC()
	if quick.Machine().MicroArch != "Nehalem" {
		t.Fatal("quickstart scenario machine")
	}
}

func TestPerThreadMonitoring(t *testing.T) {
	sc, _ := NewScenario(MachineXeonW3550)
	pid, err := sc.StartSyntheticJob("u", SyntheticJob{Name: "app", IPC: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	tid, err := sc.AddSyntheticThread(pid, SyntheticJob{Name: "spinner", IPC: 3.2})
	if err != nil {
		t.Fatal(err)
	}
	if tid == pid {
		t.Fatal("thread needs its own tid")
	}
	if _, err := sc.AddSyntheticThread(99999, SyntheticJob{Name: "x", IPC: 1}); err == nil {
		t.Fatal("unknown pid accepted")
	}
	if _, err := sc.AddSyntheticThread(pid, SyntheticJob{Name: "x", IPC: 99}); err == nil {
		t.Fatal("absurd IPC accepted")
	}

	// Process view: one row blending both threads' IPC.
	procMon, err := NewSimMonitor(sc, Config{Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer procMon.Close()
	procMon.SampleNow()
	procSample, err := procMon.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if len(procSample.Rows) != 1 {
		t.Fatalf("process rows = %d", len(procSample.Rows))
	}
	blended := procSample.Rows[0].IPC
	if blended < 1.3 || blended > 3.0 {
		t.Fatalf("blended process IPC = %.2f (footnote 3: spinner inflates it)", blended)
	}

	// Thread view: two rows, the spinner clearly hotter.
	thrMon, err := NewSimMonitor(sc, Config{Interval: time.Second, PerThread: true})
	if err != nil {
		t.Fatal(err)
	}
	defer thrMon.Close()
	thrMon.SampleNow()
	thrSample, err := thrMon.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if len(thrSample.Rows) != 2 {
		t.Fatalf("thread rows = %d", len(thrSample.Rows))
	}
	var worker, spinner float64
	for _, row := range thrSample.Rows {
		if row.PID != pid {
			t.Fatalf("unexpected pid %d", row.PID)
		}
		if row.IPC > spinner {
			worker, spinner = spinner, row.IPC
		} else if row.IPC > worker {
			worker = row.IPC
		}
	}
	if spinner < worker*2 {
		t.Fatalf("per-thread view must separate spinner (%.2f) from worker (%.2f)", spinner, worker)
	}
}

func TestLatencyScreenEndToEnd(t *testing.T) {
	// The §3.4 future-work screen: memory-stall share rises with
	// memory-hungry neighbours while %CPU stays flat.
	stallShare := func(neighbours int) float64 {
		sc, _ := NewScenario(MachineXeonW3550)
		if _, err := sc.StartWorkload("u", "mcf", 0.02, 0); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < neighbours; i++ {
			if _, err := sc.StartSyntheticJob("n", SyntheticJob{
				Name: "stream", IPC: 0.8, MemRefsPKI: 350, HotMB: 2, WarmMB: 24,
			}, i+1); err != nil {
				t.Fatal(err)
			}
		}
		mon, err := NewSimMonitor(sc, Config{Screen: "lat", Interval: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		defer mon.Close()
		mon.SampleNow()
		var sum, n float64
		for i := 0; i < 10; i++ {
			sample, err := mon.Sample()
			if err != nil {
				t.Fatal(err)
			}
			for _, row := range sample.Rows {
				if row.Command == "429.mcf" && row.IPC > 0 {
					sum += row.Columns[3] // %STL
					n++
				}
			}
		}
		if n == 0 {
			t.Fatal("no samples")
		}
		return sum / n
	}
	alone := stallShare(0)
	crowded := stallShare(3)
	if crowded <= alone*1.5 {
		t.Fatalf("memory-stall share must rise with neighbours: %.1f%% -> %.1f%%", alone, crowded)
	}
}

func TestRooflineScreen(t *testing.T) {
	sc, _ := NewScenario(MachineXeonW3550)
	sc.StartWorkload("u", "gromacs", 0.01)
	mon, err := NewSimMonitor(sc, Config{Screen: "roofline"})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	mon.SampleNow()
	sample, err := mon.Sample()
	if err != nil {
		t.Fatal(err)
	}
	row := sample.Rows[0]
	headers := mon.Headers()
	if headers[0] != "FPC" || headers[1] != "LPC" {
		t.Fatalf("headers = %v", headers)
	}
	// gromacs: 480 FP ops per KI at IPC ~1.75 -> FPC ~0.84.
	if fpc := row.Columns[0]; fpc < 0.5 || fpc > 1.2 {
		t.Fatalf("gromacs FPC = %v", fpc)
	}
	if bpi := row.Columns[4]; bpi < 0.05 || bpi > 0.15 {
		t.Fatalf("gromacs BPI = %v", bpi)
	}
}

func TestRealMonitorGracefulFallback(t *testing.T) {
	mon, err := NewRealMonitor(Config{})
	if err != nil {
		if !errors.Is(err, ErrNoBackend) {
			t.Fatalf("unexpected error type: %v", err)
		}
		t.Skipf("perf_event unavailable (expected in containers): %v", err)
	}
	defer mon.Close()
	sample, err := mon.SampleNow()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("live monitoring works: %d tasks visible", len(sample.Rows))
}

func TestManyTasksScenarioParallelMonitor(t *testing.T) {
	const tasks = 300
	sc, err := ScenarioManyTasks(tasks)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewSimMonitor(sc, Config{Interval: time.Second, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	sample, err := mon.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if len(sample.Rows) != tasks {
		t.Fatalf("rows = %d, want %d", len(sample.Rows), tasks)
	}
	monitored := 0
	for _, r := range sample.Rows {
		if r.Monitored {
			monitored++
		}
	}
	if monitored != tasks {
		t.Fatalf("monitored = %d, want %d", monitored, tasks)
	}
	if _, err := ScenarioManyTasks(0); err == nil {
		t.Fatal("n = 0 must be rejected")
	}
}

// TestCustomEventsAndScreens drives the extensible event registry
// through the public facade: a raw-coded event and a hw-cache event
// defined in Config (no registry defaults edited) power a custom
// screen against the sim backend, whose machine model decodes the
// codes.
func TestCustomEventsAndScreens(t *testing.T) {
	sc, err := NewNamedScenario("assist", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Interval: 20 * time.Millisecond,
		Screen:   "fpcustom",
		Events: []EventDef{
			{Name: "FP_ASSIST_RAW", Spec: "RAW:0x1EF7", Desc: "assists via raw code"},
			{Name: "L1D_MISSES", Spec: "L1D_READ_MISS"},
		},
		Screens: []ScreenDef{{
			Name: "fpcustom",
			Columns: []ColumnDef{
				{Name: "ipc", Header: "IPC", Format: "%5.2f", Width: 5,
					Expr: "ratio(INSTRUCTIONS, CYCLES)"},
				{Name: "asst", Header: "%ASST", Format: "%6.2f", Width: 6,
					Expr: "per100(FP_ASSIST_RAW, INSTRUCTIONS)"},
				{Name: "l1m", Header: "L1M", Format: "%6.2f", Width: 6,
					Expr: "per100(L1D_MISSES, INSTRUCTIONS)"},
			},
		}},
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	mon, err := NewSimMonitor(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	if _, err := mon.SampleNow(); err != nil {
		t.Fatal(err)
	}
	s, err := mon.Sample()
	if err != nil {
		t.Fatal(err)
	}
	var micro *Row
	for i := range s.Rows {
		if s.Rows[i].Command == "fpmicro-x87-inf" {
			micro = &s.Rows[i]
		}
	}
	if micro == nil {
		t.Fatalf("x87/inf micro-kernel missing from %+v", s.Rows)
	}
	// Columns: ipc, %ASST, L1M. The x87/inf kernel assists on every
	// fadd: 25 per hundred instructions (1 of the 4-instruction loop).
	if asst := micro.Columns[1]; asst < 24.9 || asst > 25.1 {
		t.Fatalf("%%ASST = %v, want ~25", asst)
	}
	if got := micro.Events["FP_ASSIST_RAW"]; got == 0 {
		t.Fatal("custom event deltas must be exposed by name")
	}
	// The registry listing shows the definitions with backend support.
	infos := mon.EventList()
	byName := map[string]EventInfo{}
	for _, info := range infos {
		byName[info.Name] = info
	}
	fpa := byName["FP_ASSIST_RAW"]
	if !fpa.Supported["sim"] || !fpa.Attached || fpa.Kind != "raw" {
		t.Fatalf("FP_ASSIST_RAW info = %+v", fpa)
	}
	// A custom event the machine cannot decode is rejected up front.
	bad := cfg
	bad.Events = append([]EventDef{}, cfg.Events...)
	bad.Screens = append([]ScreenDef{}, cfg.Screens...)
	bad.Events = append(bad.Events, EventDef{Name: "NODECODE", Spec: "RAW:0xDEAD"})
	bad.Screens[0].Columns = append(bad.Screens[0].Columns, ColumnDef{
		Name: "nd", Header: "ND", Expr: "mega(NODECODE)",
	})
	sc2, err := NewNamedScenario("assist", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSimMonitor(sc2, bad); err == nil {
		t.Fatal("undecodable raw event accepted by the sim backend")
	}
}

func TestListEvents(t *testing.T) {
	infos, err := ListEvents(Config{
		Events: []EventDef{{Name: "X_RAW", Spec: "RAW:0x1EF7"}},
	}, MachineXeonW3550)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 16 {
		t.Fatalf("infos = %d, want 15 defaults + 1 custom", len(infos))
	}
	for i := 1; i < len(infos); i++ {
		if infos[i-1].Name >= infos[i].Name {
			t.Fatalf("not sorted: %q before %q", infos[i-1].Name, infos[i].Name)
		}
	}
	var x EventInfo
	for _, info := range infos {
		if info.Name == "X_RAW" {
			x = info
		}
	}
	// Raw codes: off for the default perf_event backend, decoded by
	// the Nehalem machine model.
	if x.Supported["perf_event"] || !x.Supported["sim"] {
		t.Fatalf("X_RAW support = %+v", x.Supported)
	}
	if _, err := ListEvents(Config{}, "nope"); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

// TestValidateMatchesConstructors: Config.Validate must reject exactly
// what the Monitor constructors reject — including screens whose
// identifiers do not resolve (regression: such configs passed Validate
// and only failed at construction).
func TestValidateMatchesConstructors(t *testing.T) {
	cfg := Config{
		Screen: "typo",
		Screens: []ScreenDef{{
			Name: "typo",
			Columns: []ColumnDef{
				{Name: "c", Header: "C", Expr: "ratio(CYCELS, INSTRUCTIONS)"},
			},
		}},
	}
	err := cfg.Validate()
	if err == nil {
		t.Fatal("unknown identifier passed Validate")
	}
	for _, want := range []string{`"typo"`, `"c"`, `"CYCELS"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %s", err, want)
		}
	}
	// An alias of a generic event works end to end on the sim backend
	// (regression: the virtual PMU resolved generic events by name and
	// rejected aliases).
	ok := Config{
		Interval: 20 * time.Millisecond,
		Screen:   "aliased",
		Events:   []EventDef{{Name: "INSTR_ALIAS", Spec: "INSTRUCTIONS"}},
		Screens: []ScreenDef{{
			Name: "aliased",
			Columns: []ColumnDef{
				{Name: "ipc", Header: "IPC", Expr: "ratio(INSTR_ALIAS, CYCLES)"},
			},
		}},
	}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	sc, err := NewNamedScenario("datacenter", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewSimMonitor(sc, ok)
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	mon.SampleNow()
	s, err := mon.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) == 0 || s.Rows[0].Columns[0] <= 0 {
		t.Fatalf("aliased IPC column = %+v", s.Rows)
	}
	// A facade event shadowing a context variable is rejected like the
	// XML path rejects it.
	shadow := Config{Events: []EventDef{{Name: "DELTA_NS", Spec: "RAW:0x1"}}}
	if err := shadow.Validate(); err == nil || !strings.Contains(err.Error(), "context variable") {
		t.Fatalf("context-variable shadowing error = %v", err)
	}
}
