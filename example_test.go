package tiptop_test

import (
	"fmt"
	"log"
	"time"

	"tiptop"
)

// The basic loop: build a scenario, start something, watch it. The same
// code drives real machines via NewRealMonitor where perf_event_open is
// permitted.
func ExampleNewSimMonitor() {
	scenario, err := tiptop.NewScenario(tiptop.MachineXeonW3550)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := scenario.StartWorkload("alice", "gromacs", 0.01); err != nil {
		log.Fatal(err)
	}
	mon, err := tiptop.NewSimMonitor(scenario, tiptop.Config{Interval: 2 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer mon.Close()

	mon.SampleNow() // attach counters to the already-running task
	sample, err := mon.Sample()
	if err != nil {
		log.Fatal(err)
	}
	row := sample.Rows[0]
	fmt.Printf("%s owned by %s, healthy IPC: %v\n",
		row.Command, row.User, row.IPC > 1.5)
	// Output:
	// 435.gromacs owned by alice, healthy IPC: true
}

// The Table 1 experiment through the public API: the x87 micro-benchmark
// with NaN operands collapses; the SSE version does not.
func ExampleScenario_StartFPMicro() {
	measure := func(mode string) float64 {
		scenario, _ := tiptop.NewScenario(tiptop.MachineXeonW3550)
		// 5M iterations keep the instruction-accurate VM fast while
		// outliving the short sampling interval in both modes.
		if _, err := scenario.StartFPMicro("user", mode, "nan", 5_000_000); err != nil {
			log.Fatal(err)
		}
		mon, err := tiptop.NewSimMonitor(scenario, tiptop.Config{
			Screen: "fp", Interval: 2 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer mon.Close()
		mon.SampleNow()
		sample, err := mon.Sample()
		if err != nil {
			log.Fatal(err)
		}
		return sample.Rows[0].IPC
	}
	x87 := measure("x87")
	sse := measure("sse")
	fmt.Printf("x87 collapses below 0.02: %v\n", x87 < 0.02)
	fmt.Printf("SSE stays above 1.3:     %v\n", sse > 1.3)
	fmt.Printf("slowdown is an order of 87x: %v\n", sse/x87 > 70)
	// Output:
	// x87 collapses below 0.02: true
	// SSE stays above 1.3:     true
	// slowdown is an order of 87x: true
}

// Pinning workloads reproduces the paper's taskset experiments: co-located
// mcf copies interfere through the shared L3 while %CPU stays at 100.
func ExampleScenario_StartWorkload() {
	ipcOf := func(copies int) float64 {
		scenario, _ := tiptop.NewScenario(tiptop.MachineXeonW3550)
		for i := 0; i < copies; i++ {
			if _, err := scenario.StartWorkload("user", "mcf", 0.05, i); err != nil {
				log.Fatal(err)
			}
		}
		mon, err := tiptop.NewSimMonitor(scenario, tiptop.Config{Interval: 5 * time.Second})
		if err != nil {
			log.Fatal(err)
		}
		defer mon.Close()
		mon.SampleNow()
		var sum float64
		var n int
		for i := 0; i < 3; i++ {
			sample, err := mon.Sample()
			if err != nil {
				log.Fatal(err)
			}
			for _, row := range sample.Rows {
				if row.IPC > 0 {
					sum += row.IPC
					n++
					break
				}
			}
		}
		return sum / float64(n)
	}
	solo := ipcOf(1)
	crowded := ipcOf(3)
	fmt.Printf("3 co-running copies are slower: %v\n", crowded < solo*0.95)
	// Output:
	// 3 co-running copies are slower: true
}
