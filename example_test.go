package tiptop_test

import (
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"time"

	"tiptop"
)

// The basic loop: build a scenario, start something, watch it. The same
// code drives real machines via NewRealMonitor where perf_event_open is
// permitted.
func ExampleNewSimMonitor() {
	scenario, err := tiptop.NewScenario(tiptop.MachineXeonW3550)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := scenario.StartWorkload("alice", "gromacs", 0.01); err != nil {
		log.Fatal(err)
	}
	mon, err := tiptop.NewSimMonitor(scenario, tiptop.Config{Interval: 2 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer mon.Close()

	mon.SampleNow() // attach counters to the already-running task
	sample, err := mon.Sample()
	if err != nil {
		log.Fatal(err)
	}
	row := sample.Rows[0]
	fmt.Printf("%s owned by %s, healthy IPC: %v\n",
		row.Command, row.User, row.IPC > 1.5)
	// Output:
	// 435.gromacs owned by alice, healthy IPC: true
}

// The Table 1 experiment through the public API: the x87 micro-benchmark
// with NaN operands collapses; the SSE version does not.
func ExampleScenario_StartFPMicro() {
	measure := func(mode string) float64 {
		scenario, _ := tiptop.NewScenario(tiptop.MachineXeonW3550)
		// 5M iterations keep the instruction-accurate VM fast while
		// outliving the short sampling interval in both modes.
		if _, err := scenario.StartFPMicro("user", mode, "nan", 5_000_000); err != nil {
			log.Fatal(err)
		}
		mon, err := tiptop.NewSimMonitor(scenario, tiptop.Config{
			Screen: "fp", Interval: 2 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer mon.Close()
		mon.SampleNow()
		sample, err := mon.Sample()
		if err != nil {
			log.Fatal(err)
		}
		return sample.Rows[0].IPC
	}
	x87 := measure("x87")
	sse := measure("sse")
	fmt.Printf("x87 collapses below 0.02: %v\n", x87 < 0.02)
	fmt.Printf("SSE stays above 1.3:     %v\n", sse > 1.3)
	fmt.Printf("slowdown is an order of 87x: %v\n", sse/x87 > 70)
	// Output:
	// x87 collapses below 0.02: true
	// SSE stays above 1.3:     true
	// slowdown is an order of 87x: true
}

// Recording: subscribe a Recorder and every subsequent sample also
// lands in per-task history rings and per-user/command/machine
// aggregates, queryable while sampling continues.
func ExampleRecorder() {
	scenario, err := tiptop.NewScenario(tiptop.MachineXeonW3550)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := scenario.StartWorkload("alice", "gromacs", 0.05); err != nil {
		log.Fatal(err)
	}
	mon, err := tiptop.NewSimMonitor(scenario, tiptop.Config{Interval: 2 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer mon.Close()

	rec := tiptop.NewRecorder(tiptop.RecorderOptions{})
	mon.Subscribe(rec)
	mon.SampleNow() // attach pass — also recorded
	for i := 0; i < 3; i++ {
		if _, err := mon.Sample(); err != nil {
			log.Fatal(err)
		}
	}

	snap := rec.Snapshot()
	pids := rec.PIDs()
	series := rec.History(pids[0])
	fmt.Printf("refreshes recorded: %d\n", snap.Refreshes)
	fmt.Printf("tasks live: %d, owned by alice: %v\n", snap.Machine.Tasks, snap.Users["alice"].Tasks == 1)
	fmt.Printf("points in the task's history: %d\n", len(series[0].Points))
	// Output:
	// refreshes recorded: 4
	// tasks live: 1, owned by alice: true
	// points in the task's history: 4
}

// Durable history: tee the recorder into an on-disk store, serve it
// over HTTP, and range-query it with the query client — the same
// /api/v1/query contract tiptopd -store exposes.
func ExampleQueryClient() {
	dir, err := os.MkdirTemp("", "tiptop-store-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	st, err := tiptop.OpenStore(dir, tiptop.StoreOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	scenario, _ := tiptop.NewScenario(tiptop.MachineXeonW3550)
	if _, err := scenario.StartWorkload("alice", "gromacs", 0.05); err != nil {
		log.Fatal(err)
	}
	mon, err := tiptop.NewSimMonitor(scenario, tiptop.Config{Interval: 2 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer mon.Close()
	rec := tiptop.NewRecorder(tiptop.RecorderOptions{})
	mon.Subscribe(rec)
	rec.Tee(st) // every observed sample is now also appended durably

	mon.SampleNow()
	for i := 0; i < 4; i++ {
		if _, err := mon.Sample(); err != nil {
			log.Fatal(err)
		}
	}

	srv := httptest.NewServer(st.Handler())
	defer srv.Close()
	qc, err := tiptop.NewQueryClient(srv.URL)
	if err != nil {
		log.Fatal(err)
	}
	res, err := qc.Query(tiptop.StoreQuery{PID: -1, FromSeconds: 1, ToSeconds: 6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("series: %d\n", len(res.Series))
	fmt.Printf("raw points in [1s, 6s]: %d\n", len(res.Series[0].Points))
	fmt.Printf("machine roll-up points: %d\n", len(res.Machine))
	// Output:
	// series: 1
	// raw points in [1s, 6s]: 3
	// machine roll-up points: 3
}

// Pinning workloads reproduces the paper's taskset experiments: co-located
// mcf copies interfere through the shared L3 while %CPU stays at 100.
func ExampleScenario_StartWorkload() {
	ipcOf := func(copies int) float64 {
		scenario, _ := tiptop.NewScenario(tiptop.MachineXeonW3550)
		for i := 0; i < copies; i++ {
			if _, err := scenario.StartWorkload("user", "mcf", 0.05, i); err != nil {
				log.Fatal(err)
			}
		}
		mon, err := tiptop.NewSimMonitor(scenario, tiptop.Config{Interval: 5 * time.Second})
		if err != nil {
			log.Fatal(err)
		}
		defer mon.Close()
		mon.SampleNow()
		var sum float64
		var n int
		for i := 0; i < 3; i++ {
			sample, err := mon.Sample()
			if err != nil {
				log.Fatal(err)
			}
			for _, row := range sample.Rows {
				if row.IPC > 0 {
					sum += row.IPC
					n++
					break
				}
			}
		}
		return sum / float64(n)
	}
	solo := ipcOf(1)
	crowded := ipcOf(3)
	fmt.Printf("3 co-running copies are slower: %v\n", crowded < solo*0.95)
	// Output:
	// 3 co-running copies are slower: true
}
