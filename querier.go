package tiptop

// The unified query surface: every backend that can answer a screen-
// language expression — a durable Store, a live Recorder, a remote
// QueryClient — satisfies one Querier interface, so code written
// against it runs unchanged whether the history lives on local disk,
// in live ring buffers, or behind a daemon's HTTP endpoint.

import (
	"fmt"

	"tiptop/internal/query"
)

// Querier is the expression-query contract shared by all history
// backends. QueryExpr evaluates a screen-language expression —
// `delta(INSTRUCTIONS)/delta(CYCLES)`, `topk(3, rate(CYCLES)) by
// user`, `avg_over_time(ipc)` — over the backend's recorded
// observations, bucketed to opt.StepSeconds.
//
// extra parameters come in name/value pairs. The remote backend
// (QueryClient) forwards them to the daemon ("agent", "*" merges a
// fleet; "source", "live" forces a solo daemon's rings); the local
// backends accept none and reject them loudly, so a caller cannot
// silently assume remote-only behaviour of a local store.
//
// Obtain one from Store.Querier, Recorder.Querier, or use a
// QueryClient directly.
type Querier interface {
	QueryExpr(expr string, opt QueryOptions, extra ...string) (*QueryResult, error)
}

var _ Querier = (*QueryClient)(nil)

// storeQuerier adapts a Store to the Querier contract.
type storeQuerier struct{ st *Store }

// Querier returns the store's unified query surface.
func (st *Store) Querier() Querier { return storeQuerier{st} }

func (q storeQuerier) QueryExpr(expr string, opt QueryOptions, extra ...string) (*QueryResult, error) {
	if err := rejectExtra("store", extra); err != nil {
		return nil, err
	}
	c, err := query.Compile(expr, query.KnownNames(q.st.s.Columns()))
	if err != nil {
		return nil, err
	}
	return query.QueryStore(q.st.s, c, opt)
}

// recorderQuerier adapts a Recorder to the Querier contract.
type recorderQuerier struct{ r *Recorder }

// Querier returns the recorder's unified query surface over its live
// ring buffers.
func (r *Recorder) Querier() Querier { return recorderQuerier{r} }

func (q recorderQuerier) QueryExpr(expr string, opt QueryOptions, extra ...string) (*QueryResult, error) {
	if err := rejectExtra("recorder", extra); err != nil {
		return nil, err
	}
	c, err := query.Compile(expr, query.KnownNames(q.r.h.Columns()))
	if err != nil {
		return nil, err
	}
	return query.QueryHistory(q.r.h, c, opt)
}

// rejectExtra fails a local query that passes remote-only parameters:
// a store or recorder has no agents to select and no alternate source,
// and silently ignoring the request would return the wrong data.
func rejectExtra(backend string, extra []string) error {
	if len(extra) == 0 {
		return nil
	}
	return fmt.Errorf("tiptop: the %s backend accepts no extra query parameters (got %q); agent= and source= are remote-only", backend, extra)
}
